// apollo-fleet: deterministic multi-process harness for the fleet service.
//
// Forks one apollo_served daemon (as a sibling binary, fork+exec) and N real
// client processes (fork, no exec), each running a Mode::Adapt workload with
// APOLLO_SERVICE_SOCKET pointed at the daemon. Ranks are skewed the same way
// the strong-scaling experiments skew AMR patches: a weighted deck of
// "patches" (kernel launch sizes) is distributed across ranks with
// sim::ClusterModel::decompose, so no single client sees the whole feature
// space — only the fleet does. That is exactly the regime where central
// aggregation beats per-process learning.
//
// The parent stays single-threaded until every fork has happened (fork in a
// multi-threaded process inherits a poisoned lock state); children create
// their Runtime (and its threads) only after the fork.
//
// Usage:
//   apollo_fleet --socket PATH [--clients N] [--steps N] [--step-ms MS]
//                [--kill-after SEC] [--no-daemon] [--out-dir DIR]
//                [--expect-generation G] [--expect-fallbacks]
//                [--fleet-metrics FILE] [--fleet-events FILE] [--slo-ms N]
//                [--telemetry-ship-ms MS]
//
// The fleet observability flags forward to the forked apollo_served
// (--fleet-metrics/--fleet-events/--slo-ms) and to every client
// (--telemetry-ship-ms turns on APOLLO_TELEMETRY + TELEMETRY shipping), so
// one invocation exercises the whole plane: clients ship metric snapshots,
// the daemon merges them into the fleet export and event log.
//
// Exit 0 iff every client completed every planned launch (zero dropped) and
// every --expect-* gate held. --kill-after SIGKILLs the daemon mid-run: the
// gate then is that clients still finish everything via local fallback.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <libgen.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/runtime.hpp"
#include "service/client.hpp"
#include "sim/cluster.hpp"
#include "telemetry/build_info.hpp"

using namespace apollo;

namespace {

struct Options {
  std::string socket;
  unsigned clients = 4;
  std::size_t steps = 200;
  long step_ms = 0;
  double kill_after = 0.0;
  bool no_daemon = false;
  std::string out_dir = ".";
  std::uint64_t expect_generation = 0;
  bool expect_fallbacks = false;
  std::string fleet_metrics;
  std::string fleet_events;
  long slo_ms = 0;
  long telemetry_ship_ms = 0;
};

const KernelHandle& fleet_kernel() {
  static const KernelHandle k{"fleet:stream", "FleetKernel",
                              instr::MixBuilder{}.fp(2).load(2).store(1).build(), 24};
  return k;
}

/// The fleet's patch deck: small sizes (sequential wins) and large sizes
/// (OpenMP wins ~4x), two patches per rank on average. decompose() hands the
/// heavy patches to dedicated ranks, so some ranks see *only* the small
/// regime — their local learner alone could never label the large one.
std::vector<std::int64_t> make_patch_deck(unsigned clients) {
  static const std::int64_t sizes[] = {2000, 4000, 8000, 150000, 250000};
  std::vector<std::int64_t> deck;
  for (unsigned p = 0; p < 2 * clients; ++p) deck.push_back(sizes[p % 5]);
  return deck;
}

std::string rank_file(const Options& opt, unsigned rank) {
  return opt.out_dir + "/fleet_rank" + std::to_string(rank) + ".txt";
}

/// The client process body (runs after fork, before any Runtime existed).
int run_client(const Options& opt, unsigned rank, const std::vector<std::int64_t>& my_patches) {
  ::setenv("APOLLO_SERVICE_SOCKET", opt.socket.c_str(), 1);
  ::setenv("APOLLO_SERVICE_BATCH", "32", 1);
  ::setenv("APOLLO_SERVICE_RETRY_MS", "100", 1);
  if (opt.telemetry_ship_ms > 0) {
    // Telemetry shipping drains the process-global registry, so the client
    // must be recording metrics for the snapshot to carry anything.
    ::setenv("APOLLO_TELEMETRY", "1", 1);
    ::setenv("APOLLO_TELEMETRY_SHIP_MS", std::to_string(opt.telemetry_ship_ms).c_str(), 1);
  }

  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);
  online::OnlineConfig config;
  config.sample_stride = 1;  // every launch is fleet training data
  config.min_retrain_samples = 48;
  config.drift.window = 32;
  config.drift.min_samples = 8;
  config.drift.cooldown = 48;
  config.explorer.epsilon = 0.20;  // cold start: explore aggressively
  rt.configure_online(config);

  const std::size_t planned = opt.steps * my_patches.size();
  std::size_t completed = 0;
  for (std::size_t step = 0; step < opt.steps; ++step) {
    for (const std::int64_t size : my_patches) {
      apollo::forall(fleet_kernel(), raja::IndexSet::range(0, size), [](raja::Index) {});
      ++completed;
    }
    if (opt.step_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(opt.step_ms));
  }

  service::ServiceClient::Status status;
  if (const service::ServiceClient* client = rt.service_client()) {
    // Give the background lane one beat to flush the tail of the buffer.
    rt.service_client()->wait_sent(1, 0.5);
    status = client->status();
    if (opt.expect_generation > 0 && opt.kill_after <= 0.0) {
      // The steps above can finish in milliseconds — faster than the daemon
      // can accumulate a training quorum and broadcast the model. Linger
      // (bounded) until this rank has applied the expected generation, so
      // --expect-generation gates convergence, not a shutdown race.
      const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (status.generation < opt.expect_generation &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        status = client->status();
      }
    }
  }
  const auto online_status = rt.online().status();

  // Newest lineage-attributed sample->swap pipeline latency, when a push's
  // lineage named one of this client's batches.
  double pipeline_latency = -1.0;
  if (!status.pipeline.empty()) pipeline_latency = status.pipeline.back().latency_seconds;

  std::ofstream out(rank_file(opt, rank));
  out << "rank=" << rank << "\n"
      << "planned=" << planned << "\n"
      << "completed=" << completed << "\n"
      << "patches=" << my_patches.size() << "\n"
      << "connects=" << status.connects << "\n"
      << "fallbacks=" << status.fallbacks << "\n"
      << "client_id=" << status.client_id << "\n"
      << "batches_sent=" << status.batches_sent << "\n"
      << "samples_sent=" << status.samples_sent << "\n"
      << "telemetry_shipped=" << status.telemetry_shipped << "\n"
      << "pushes_applied=" << status.pushes_applied << "\n"
      << "generation=" << status.generation << "\n"
      << "pipeline_latency_seconds=" << pipeline_latency << "\n"
      << "local_retrains=" << online_status.retrains_completed << "\n"
      << "transport_seconds=" << status.transport_seconds << "\n";
  out.close();
  rt.reset();  // stops the service client and retrainer cleanly
  return completed == planned ? 0 : 1;
}

pid_t spawn_daemon(const Options& opt) {
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    std::perror("apollo_fleet: readlink /proc/self/exe");
    return -1;
  }
  exe[n] = '\0';
  const std::string daemon_path = std::string(::dirname(exe)) + "/apollo_served";
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("apollo_fleet: fork daemon");
    return -1;
  }
  if (pid == 0) {
    std::vector<std::string> args = {"apollo_served", "--socket",     opt.socket,
                                     "--train-batch", "96",           "--min-samples",
                                     "96"};
    if (!opt.fleet_metrics.empty()) {
      args.push_back("--fleet-metrics");
      args.push_back(opt.fleet_metrics);
    }
    if (!opt.fleet_events.empty()) {
      args.push_back("--fleet-events");
      args.push_back(opt.fleet_events);
    }
    if (opt.slo_ms > 0) {
      args.push_back("--slo-ms");
      args.push_back(std::to_string(opt.slo_ms));
    }
    std::vector<char*> argv_exec;
    argv_exec.reserve(args.size() + 1);
    for (std::string& s : args) argv_exec.push_back(s.data());
    argv_exec.push_back(nullptr);
    ::execv(daemon_path.c_str(), argv_exec.data());
    std::perror("apollo_fleet: exec apollo_served");
    ::_exit(127);
  }
  return pid;
}

std::map<std::string, std::string> read_rank_file(const std::string& path) {
  std::map<std::string, std::string> kv;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq != std::string::npos) kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

std::uint64_t to_u64(const std::map<std::string, std::string>& kv, const char* key) {
  const auto it = kv.find(key);
  return it == kv.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", build_info_string().c_str());
    return 0;
  }
  Options opt;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--socket") { if (const char* v = next()) opt.socket = v; }
    else if (arg == "--clients") { if (const char* v = next()) opt.clients = static_cast<unsigned>(std::atoi(v)); }
    else if (arg == "--steps") { if (const char* v = next()) opt.steps = static_cast<std::size_t>(std::atoll(v)); }
    else if (arg == "--step-ms") { if (const char* v = next()) opt.step_ms = std::atol(v); }
    else if (arg == "--kill-after") { if (const char* v = next()) opt.kill_after = std::atof(v); }
    else if (arg == "--no-daemon") { opt.no_daemon = true; }
    else if (arg == "--out-dir") { if (const char* v = next()) opt.out_dir = v; }
    else if (arg == "--expect-generation") { if (const char* v = next()) opt.expect_generation = std::strtoull(v, nullptr, 10); }
    else if (arg == "--expect-fallbacks") { opt.expect_fallbacks = true; }
    else if (arg == "--fleet-metrics") { if (const char* v = next()) opt.fleet_metrics = v; }
    else if (arg == "--fleet-events") { if (const char* v = next()) opt.fleet_events = v; }
    else if (arg == "--slo-ms") { if (const char* v = next()) opt.slo_ms = std::atol(v); }
    else if (arg == "--telemetry-ship-ms") { if (const char* v = next()) opt.telemetry_ship_ms = std::atol(v); }
    else {
      std::fprintf(stderr,
                   "usage: apollo_fleet --socket PATH [--clients N] [--steps N] [--step-ms MS] "
                   "[--kill-after SEC] [--no-daemon] [--out-dir DIR] "
                   "[--expect-generation G] [--expect-fallbacks] [--fleet-metrics FILE] "
                   "[--fleet-events FILE] [--slo-ms N] [--telemetry-ship-ms MS]\n");
      return 2;
    }
  }
  if (opt.socket.empty()) {
    std::fprintf(stderr, "apollo_fleet: --socket PATH is required\n");
    return 2;
  }
  if (opt.clients == 0) opt.clients = 1;

  // Patch decomposition: weight = size (compute cost), greedy LPT to ranks —
  // the same skew the fig12/fig13 strong-scaling decks use.
  const std::vector<std::int64_t> deck = make_patch_deck(opt.clients);
  std::vector<double> weights;
  weights.reserve(deck.size());
  for (const std::int64_t size : deck) weights.push_back(static_cast<double>(size));
  const std::vector<unsigned> assignment = sim::ClusterModel::decompose(weights, opt.clients);
  std::vector<std::vector<std::int64_t>> per_rank(opt.clients);
  for (std::size_t p = 0; p < deck.size(); ++p) per_rank[assignment[p]].push_back(deck[p]);

  // NOTE: no Runtime::instance() (no threads) before this point — every fork
  // below must come from a single-threaded parent.
  pid_t daemon_pid = -1;
  if (!opt.no_daemon) {
    daemon_pid = spawn_daemon(opt);
    if (daemon_pid < 0) return 1;
  }

  std::vector<pid_t> client_pids;
  for (unsigned rank = 0; rank < opt.clients; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("apollo_fleet: fork client");
      return 1;
    }
    if (pid == 0) ::_exit(run_client(opt, rank, per_rank[rank]));
    client_pids.push_back(pid);
  }
  std::printf("apollo_fleet: %u clients over %zu patches, daemon %s (pid %d)\n", opt.clients,
              deck.size(), opt.no_daemon ? "disabled" : "running",
              static_cast<int>(daemon_pid));

  if (daemon_pid > 0 && opt.kill_after > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(opt.kill_after * 1000)));
    std::printf("apollo_fleet: SIGKILL daemon (pid %d) mid-run\n", static_cast<int>(daemon_pid));
    ::kill(daemon_pid, SIGKILL);
  }

  bool clients_ok = true;
  for (std::size_t i = 0; i < client_pids.size(); ++i) {
    int status = 0;
    ::waitpid(client_pids[i], &status, 0);
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (!ok) {
      std::fprintf(stderr, "apollo_fleet: client rank %zu failed (status %d)\n", i, status);
      clients_ok = false;
    }
  }
  if (daemon_pid > 0) {
    if (opt.kill_after <= 0) ::kill(daemon_pid, SIGTERM);
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
  }

  // Aggregate the rank reports.
  std::uint64_t planned = 0, completed = 0, connects = 0, fallbacks = 0;
  std::uint64_t samples = 0, pushes = 0, max_generation = 0, local_retrains = 0;
  std::uint64_t telemetry_shipped = 0;
  bool all_fell_back = true;
  for (unsigned rank = 0; rank < opt.clients; ++rank) {
    const auto kv = read_rank_file(rank_file(opt, rank));
    if (kv.empty()) {
      std::fprintf(stderr, "apollo_fleet: missing report for rank %u\n", rank);
      clients_ok = false;
      continue;
    }
    planned += to_u64(kv, "planned");
    completed += to_u64(kv, "completed");
    connects += to_u64(kv, "connects");
    fallbacks += to_u64(kv, "fallbacks");
    samples += to_u64(kv, "samples_sent");
    pushes += to_u64(kv, "pushes_applied");
    telemetry_shipped += to_u64(kv, "telemetry_shipped");
    local_retrains += to_u64(kv, "local_retrains");
    max_generation = std::max(max_generation, to_u64(kv, "generation"));
    if (to_u64(kv, "fallbacks") == 0) all_fell_back = false;
    std::printf("  rank %u: patches=%llu completed=%llu/%llu connects=%llu fallbacks=%llu "
                "samples_sent=%llu pushes=%llu gen=%llu\n",
                rank, static_cast<unsigned long long>(to_u64(kv, "patches")),
                static_cast<unsigned long long>(to_u64(kv, "completed")),
                static_cast<unsigned long long>(to_u64(kv, "planned")),
                static_cast<unsigned long long>(to_u64(kv, "connects")),
                static_cast<unsigned long long>(to_u64(kv, "fallbacks")),
                static_cast<unsigned long long>(to_u64(kv, "samples_sent")),
                static_cast<unsigned long long>(to_u64(kv, "pushes_applied")),
                static_cast<unsigned long long>(to_u64(kv, "generation")));
  }
  std::printf("fleet: completed=%llu/%llu samples_shipped=%llu pushes_applied=%llu "
              "max_generation=%llu fallbacks=%llu local_retrains=%llu telemetry=%llu\n",
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(planned),
              static_cast<unsigned long long>(samples),
              static_cast<unsigned long long>(pushes),
              static_cast<unsigned long long>(max_generation),
              static_cast<unsigned long long>(fallbacks),
              static_cast<unsigned long long>(local_retrains),
              static_cast<unsigned long long>(telemetry_shipped));

  bool pass = clients_ok && completed == planned && planned > 0;
  if (!pass) std::printf("FAIL: dropped launches (%llu of %llu missing) or client failure\n",
                         static_cast<unsigned long long>(planned - completed),
                         static_cast<unsigned long long>(planned));
  if (opt.expect_generation > 0 && max_generation < opt.expect_generation) {
    std::printf("FAIL: expected model generation >= %llu, fleet reached %llu\n",
                static_cast<unsigned long long>(opt.expect_generation),
                static_cast<unsigned long long>(max_generation));
    pass = false;
  }
  if (opt.expect_fallbacks && !all_fell_back) {
    std::printf("FAIL: expected every client to fall back after the daemon kill\n");
    pass = false;
  }
  if (pass) std::printf("PASS: zero dropped launches across the fleet\n");
  return pass ? 0 : 1;
}
