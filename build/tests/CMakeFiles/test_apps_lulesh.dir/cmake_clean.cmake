file(REMOVE_RECURSE
  "CMakeFiles/test_apps_lulesh.dir/test_apps_lulesh.cpp.o"
  "CMakeFiles/test_apps_lulesh.dir/test_apps_lulesh.cpp.o.d"
  "test_apps_lulesh"
  "test_apps_lulesh.pdb"
  "test_apps_lulesh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
