#pragma once

// Hardened environment-variable parsing for the runtime's numeric knobs
// (APOLLO_SAMPLE_CAPACITY, APOLLO_INTROSPECT_STRIDE, APOLLO_PROBE_STRIDE,
// ...). A production tuner must not silently misconfigure itself: a typo'd
// value ("1e6", "64k", "-3", "") is rejected with a one-line stderr warning
// and the documented default is kept, instead of atoll() quietly yielding 0
// and e.g. shrinking the sample buffer to nothing.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace apollo::telemetry {

/// Integer in [min_value, max]. Unset -> fallback. Set but non-numeric,
/// trailing junk, out of range, or < min_value -> warn on stderr + fallback.
[[nodiscard]] std::int64_t env_int64(const char* name, std::int64_t fallback,
                                     std::int64_t min_value = 1);

/// Size-typed convenience over env_int64 (same validation and warning).
[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback,
                                   std::size_t min_value = 1);

/// Finite double >= min_value, same rejection rules.
[[nodiscard]] double env_double(const char* name, double fallback, double min_value = 0.0);

/// String value ("" when unset).
[[nodiscard]] std::string env_string(const char* name, const std::string& fallback = "");

/// Enumerated string knob (APOLLO_SEARCH, ...): the value must equal one of
/// `allowed` exactly. Unset -> fallback; anything else -> warn on stderr
/// listing the accepted spellings + fallback.
[[nodiscard]] std::string env_choice(const char* name, const std::string& fallback,
                                     const std::vector<std::string>& allowed);

}  // namespace apollo::telemetry
