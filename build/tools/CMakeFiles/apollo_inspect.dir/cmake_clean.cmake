file(REMOVE_RECURSE
  "CMakeFiles/apollo_inspect.dir/apollo_inspect.cpp.o"
  "CMakeFiles/apollo_inspect.dir/apollo_inspect.cpp.o.d"
  "apollo_inspect"
  "apollo_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
