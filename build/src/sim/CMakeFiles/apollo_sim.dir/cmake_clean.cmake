file(REMOVE_RECURSE
  "CMakeFiles/apollo_sim.dir/cluster.cpp.o"
  "CMakeFiles/apollo_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/apollo_sim.dir/gpu.cpp.o"
  "CMakeFiles/apollo_sim.dir/gpu.cpp.o.d"
  "CMakeFiles/apollo_sim.dir/machine.cpp.o"
  "CMakeFiles/apollo_sim.dir/machine.cpp.o.d"
  "libapollo_sim.a"
  "libapollo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
