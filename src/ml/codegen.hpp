#pragma once

// Decision-tree -> C++ code generation (§III-C): internal nodes become `if`
// statements on feature values, leaves become parameter assignments. The
// generated translation unit can be compiled to a shared object and loaded
// into a running process, reproducing the paper's "models linked into the
// application dynamically, without recompilation" deployment.

#include <string>

#include "ml/decision_tree.hpp"

namespace apollo::ml {

/// Generate a free function
///   extern "C" int <function_name>(const double* features);
/// returning the predicted class index. Features are indexed in
/// tree.feature_names() order; a header comment documents the mapping.
[[nodiscard]] std::string generate_cpp(const DecisionTree& tree, const std::string& function_name);

/// Generate the paper-style tuner entry point (its apollo_begin_forall_iset
/// example): reads named features, writes the selected policy to the model
/// params struct via nested conditionals.
[[nodiscard]] std::string generate_tuner_cpp(const DecisionTree& tree,
                                             const std::string& function_name);

/// A predictor loaded from a compiled shared object.
class CompiledPredictor {
public:
  CompiledPredictor() = default;
  ~CompiledPredictor();

  CompiledPredictor(CompiledPredictor&& other) noexcept;
  CompiledPredictor& operator=(CompiledPredictor&& other) noexcept;
  CompiledPredictor(const CompiledPredictor&) = delete;
  CompiledPredictor& operator=(const CompiledPredictor&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fn_ != nullptr; }
  [[nodiscard]] int predict(const double* features) const;

  /// Compile `source` with the system C++ compiler into `work_dir` and dlopen
  /// the result. Throws std::runtime_error when no compiler is available or
  /// compilation fails.
  static CompiledPredictor compile(const std::string& source, const std::string& function_name,
                                   const std::string& work_dir);

private:
  using PredictFn = int (*)(const double*);
  void* handle_ = nullptr;
  PredictFn fn_ = nullptr;
};

}  // namespace apollo::ml
