file(REMOVE_RECURSE
  "libapollo_instr.a"
)
