file(REMOVE_RECURSE
  "CMakeFiles/apollo_ml.dir/codegen.cpp.o"
  "CMakeFiles/apollo_ml.dir/codegen.cpp.o.d"
  "CMakeFiles/apollo_ml.dir/confusion.cpp.o"
  "CMakeFiles/apollo_ml.dir/confusion.cpp.o.d"
  "CMakeFiles/apollo_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/apollo_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/apollo_ml.dir/dataset.cpp.o"
  "CMakeFiles/apollo_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/apollo_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/apollo_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/apollo_ml.dir/random_forest.cpp.o"
  "CMakeFiles/apollo_ml.dir/random_forest.cpp.o.d"
  "libapollo_ml.a"
  "libapollo_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
