#include "parallel/thread_priority.hpp"

#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace apollo::par {

bool lower_current_thread_priority() noexcept {
#ifdef __linux__
  // Linux setpriority() with a TID targets the single thread — exactly what
  // a background lane wants (POSIX would apply it process-wide).
  const auto tid = static_cast<id_t>(::syscall(SYS_gettid));
  return ::setpriority(PRIO_PROCESS, tid, 19) == 0;
#else
  return false;
#endif
}

}  // namespace apollo::par
