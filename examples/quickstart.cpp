// Quickstart: the whole Apollo workflow on one kernel in ~80 lines.
//
//   1. wrap a loop in apollo::forall with a KernelHandle,
//   2. run in Record mode to collect training samples,
//   3. train a decision-tree policy model and save it to disk,
//   4. load the model and run in Tune mode,
//   5. compare against the static OpenMP-everywhere default.
//
// Build & run:  ./examples/quickstart

#include <cstdio>
#include <vector>

#include "core/runtime.hpp"
#include "perf/blackboard.hpp"
#include "core/trainer.hpp"

using namespace apollo;

int main() {
  auto& rt = Runtime::instance();
  rt.reset();

  // A kernel is identified by a stable loop_id and carries its instruction
  // signature (the Dyninst-derived features of the paper, Table I).
  const KernelHandle saxpy{
      "quickstart:saxpy", "saxpy",
      instr::MixBuilder{}.fp(2).load(2).store(1).control(1).build(),
      /*bytes_per_iteration=*/24,
      raja::PolicyType::seq_segit_omp_parallel_for_exec};  // static default

  std::vector<double> x(1 << 20, 1.0), y(1 << 20, 2.0);
  double* xp = x.data();
  const double* yp = y.data();
  const auto launch = [&](raja::Index n) {
    forall(saxpy, n, [=](raja::Index i) { xp[i] += 0.5 * yp[i]; });
  };

  // --- 1. record: one execution prices every policy variant per launch ----
  std::printf("[1] recording training data...\n");
  rt.set_mode(Mode::Record);
  for (int step = 0; step < 4; ++step) {
    perf::ScopedAnnotation timestep("timestep", step);
    for (raja::Index n : {64, 512, 4096, 32768, 262144, 1048576}) launch(n);
  }
  std::printf("    %zu samples collected\n", rt.records().size());

  // --- 2. train + persist (no recompilation needed to redeploy) ----------
  std::printf("[2] training decision-tree policy model...\n");
  const TunerModel model = Trainer::train(rt.records(), TunedParameter::Policy);
  model.save_file("quickstart_policy.model");
  std::printf("    depth=%d nodes=%zu, saved to quickstart_policy.model\n",
              model.tree().depth(), model.tree().node_count());
  rt.clear_records();

  // --- 3. baseline: the static default (OpenMP everywhere) ---------------
  rt.set_mode(Mode::Off);
  rt.reset_stats();
  for (raja::Index n : {64, 512, 4096, 32768, 262144, 1048576}) launch(n);
  const double default_seconds = rt.stats().total_seconds;

  // --- 4. tune: load the model from disk and let Apollo decide -----------
  std::printf("[3] tuning with the trained model...\n");
  rt.set_mode(Mode::Tune);
  rt.load_policy_model_file("quickstart_policy.model");
  rt.reset_stats();
  for (raja::Index n : {64, 512, 4096, 32768, 262144, 1048576}) launch(n);
  const double tuned_seconds = rt.stats().total_seconds;

  std::printf("\n    static OpenMP default: %.1f us\n", default_seconds * 1e6);
  std::printf("    Apollo-tuned:          %.1f us\n", tuned_seconds * 1e6);
  std::printf("    speedup:               %.2fx\n", default_seconds / tuned_seconds);
  std::printf("\nThe model runs small launches sequentially (the OpenMP region cost\n"
              "dwarfs 64 iterations) and large launches in parallel.\n");
  return 0;
}
