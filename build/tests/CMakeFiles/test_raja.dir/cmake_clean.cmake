file(REMOVE_RECURSE
  "CMakeFiles/test_raja.dir/test_raja.cpp.o"
  "CMakeFiles/test_raja.dir/test_raja.cpp.o.d"
  "test_raja"
  "test_raja.pdb"
  "test_raja[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raja.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
