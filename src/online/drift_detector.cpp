#include "online/drift_detector.hpp"

#include <algorithm>
#include <bit>

namespace apollo::online {

std::uint64_t feature_bucket(std::int64_t num_indices, std::size_t num_segments) noexcept {
  const auto magnitude =
      num_indices > 0 ? std::bit_width(static_cast<std::uint64_t>(num_indices)) : 0;
  return (static_cast<std::uint64_t>(magnitude) << 4) |
         std::min<std::uint64_t>(num_segments, 15);
}

DriftDetector::DriftDetector(DriftConfig config) : config_(config) {}

void DriftDetector::observe(std::uint64_t bucket, std::uint64_t variant, double seconds,
                            bool chosen) {
  auto& variants = baselines_[bucket];
  auto& baseline = variants[variant];
  if (baseline.seeded) {
    baseline.value += config_.baseline_alpha * (seconds - baseline.value);
  } else {
    baseline.value = seconds;
    baseline.seeded = true;
  }
  if (!chosen) return;

  // Regret of the chosen variant against the best variant seen recently in
  // this bucket. With a single observed variant there is no evidence of a
  // better alternative, so regret is zero by construction.
  double best = baseline.value;
  for (const auto& [id, other] : variants) {
    if (other.seeded) best = std::min(best, other.value);
  }
  const double regret = best > 0.0 ? std::max(0.0, seconds / best - 1.0) : 0.0;
  if (config_.window == 0) return;
  if (regrets_.size() < config_.window) {
    regrets_.push_back(regret);
  } else {
    regret_sum_ -= regrets_[regret_next_];
    regrets_[regret_next_] = regret;
    regret_next_ = (regret_next_ + 1) % config_.window;
  }
  regret_sum_ += regret;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return;
  }
  if (regrets_.size() >= config_.min_samples && mean_regret() > config_.regret_threshold) {
    fire_pending_ = true;
    ++fires_;
    cooldown_left_ = config_.cooldown;
    regrets_.clear();  // keeps capacity: refilling the window stays alloc-free
    regret_next_ = 0;
    regret_sum_ = 0.0;
  }
}

bool DriftDetector::consume_fire() noexcept {
  const bool fired = fire_pending_;
  fire_pending_ = false;
  return fired;
}

double DriftDetector::baseline(std::uint64_t bucket, std::uint64_t variant) const noexcept {
  const auto bucket_it = baselines_.find(bucket);
  if (bucket_it == baselines_.end()) return -1.0;
  const auto variant_it = bucket_it->second.find(variant);
  if (variant_it == bucket_it->second.end() || !variant_it->second.seeded) return -1.0;
  return variant_it->second.value;
}

double DriftDetector::best_baseline(std::uint64_t bucket) const noexcept {
  const auto bucket_it = baselines_.find(bucket);
  if (bucket_it == baselines_.end()) return -1.0;
  double best = -1.0;
  for (const auto& [variant, ewma] : bucket_it->second) {
    if (ewma.seeded && (best < 0.0 || ewma.value < best)) best = ewma.value;
  }
  return best;
}

double DriftDetector::mean_regret() const noexcept {
  return regrets_.empty() ? 0.0 : regret_sum_ / static_cast<double>(regrets_.size());
}

void DriftDetector::rearm() noexcept {
  regrets_.clear();
  regret_next_ = 0;
  regret_sum_ = 0.0;
  cooldown_left_ = 0;
  fire_pending_ = false;
}

}  // namespace apollo::online
