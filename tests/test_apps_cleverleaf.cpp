// Tests for mini-CleverLeaf: box algebra, flag clustering, hierarchy
// construction, proper nesting, and hydro sanity on all three decks.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "apps/application.hpp"
#include "apps/cleverleaf/cleverleaf.hpp"
#include "core/runtime.hpp"
#include "perf/blackboard.hpp"

using namespace apollo;
using namespace apollo::apps::cleverleaf;

namespace {

class CleverTest : public ::testing::Test {
protected:
  void SetUp() override {
    Runtime::instance().reset();
    perf::Blackboard::instance().clear();
  }
  void TearDown() override { Runtime::instance().reset(); }
};

CleverConfig small_config(const std::string& problem) {
  CleverConfig cfg;
  cfg.problem = problem;
  cfg.coarse_cells = 32;
  cfg.max_levels = 3;
  return cfg;
}

}  // namespace

TEST(Box, BasicGeometry) {
  const Box b{2, 3, 5, 7};
  EXPECT_EQ(b.nx(), 4);
  EXPECT_EQ(b.ny(), 5);
  EXPECT_EQ(b.cells(), 20);
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.contains(2, 3));
  EXPECT_TRUE(b.contains(5, 7));
  EXPECT_FALSE(b.contains(6, 7));
  EXPECT_TRUE((Box{0, 0, -1, 5}).empty());
}

TEST(Box, IntersectGrowRefineCoarsen) {
  const Box a{0, 0, 9, 9};
  const Box b{5, 5, 15, 15};
  EXPECT_EQ(a.intersect(b), (Box{5, 5, 9, 9}));
  EXPECT_TRUE(a.intersect(Box{20, 20, 30, 30}).empty());
  EXPECT_EQ(a.grow(2), (Box{-2, -2, 11, 11}));
  EXPECT_EQ((Box{1, 2, 3, 4}).refine(2), (Box{2, 4, 7, 9}));
  EXPECT_EQ((Box{2, 4, 7, 9}).coarsen(2), (Box{1, 2, 3, 4}));
  EXPECT_EQ((Box{-3, -1, 1, 1}).coarsen(2), (Box{-2, -1, 0, 0}));
}

TEST(Box, RefineCoarsenRoundTrip) {
  const Box b{3, 5, 10, 12};
  EXPECT_EQ(b.refine(2).coarsen(2), b);
  EXPECT_EQ(b.refine(4).coarsen(4), b);
}

TEST(Patch, IndexingWithGhosts) {
  Patch p;
  p.box = Box{4, 6, 11, 13};  // 8x8
  p.allocate();
  EXPECT_EQ(p.stride(), 12);
  EXPECT_EQ(p.idx(4, 6), 2 + 12 * 2);          // first interior cell
  EXPECT_EQ(p.idx(2, 4), 0);                   // outermost ghost corner
  EXPECT_EQ(p.rho.size(), 12u * 12u);
  EXPECT_EQ(p.fx[0].size(), 9u * 8u);
  EXPECT_EQ(p.fy[0].size(), 8u * 9u);
}

namespace {

std::vector<std::uint8_t> mask_from(const Box& bound, const std::vector<Box>& blobs) {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(bound.cells()), 0);
  for (int j = bound.j0; j <= bound.j1; ++j) {
    for (int i = bound.i0; i <= bound.i1; ++i) {
      for (const Box& blob : blobs) {
        if (blob.contains(i, j)) {
          mask[static_cast<std::size_t>(i - bound.i0) +
               static_cast<std::size_t>(bound.nx()) * (j - bound.j0)] = 1;
        }
      }
    }
  }
  return mask;
}

bool covered(const std::vector<Box>& boxes, int i, int j) {
  for (const Box& b : boxes) {
    if (b.contains(i, j)) return true;
  }
  return false;
}

}  // namespace

TEST(ClusterFlags, SingleBlobOneTightBox) {
  const Box bound{0, 0, 31, 31};
  const Box blob{10, 12, 17, 19};
  const auto boxes = cluster_flags(mask_from(bound, {blob}), bound);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], blob);
}

TEST(ClusterFlags, TwoDistantBlobsSplit) {
  const Box bound{0, 0, 63, 63};
  const Box a{2, 2, 9, 9};
  const Box b{50, 52, 57, 59};
  const auto boxes = cluster_flags(mask_from(bound, {a, b}), bound);
  EXPECT_GE(boxes.size(), 2u);
  // Every flagged cell covered; total box area not wildly larger than flags.
  std::int64_t area = 0;
  for (const Box& box : boxes) area += box.cells();
  EXPECT_LE(area, (a.cells() + b.cells()) * 2);
  for (int j = a.j0; j <= a.j1; ++j) {
    for (int i = a.i0; i <= a.i1; ++i) EXPECT_TRUE(covered(boxes, i, j));
  }
  for (int j = b.j0; j <= b.j1; ++j) {
    for (int i = b.i0; i <= b.i1; ++i) EXPECT_TRUE(covered(boxes, i, j));
  }
}

TEST(ClusterFlags, RespectsMaxExtent) {
  const Box bound{0, 0, 127, 127};
  const Box blob{0, 0, 127, 3};  // long skinny band
  const auto boxes = cluster_flags(mask_from(bound, {blob}), bound, 0.75, 4, 32);
  for (const Box& box : boxes) {
    EXPECT_LE(box.nx(), 32);
    EXPECT_LE(box.ny(), 32);
  }
}

TEST(ClusterFlags, EmptyMaskNoBoxes) {
  const Box bound{0, 0, 15, 15};
  EXPECT_TRUE(cluster_flags(std::vector<std::uint8_t>(256, 0), bound).empty());
}

TEST(ClusterFlags, DiagonalLineDecomposes) {
  const Box bound{0, 0, 31, 31};
  std::vector<std::uint8_t> mask(1024, 0);
  for (int i = 0; i < 32; ++i) mask[static_cast<std::size_t>(i + 32 * i)] = 1;
  const auto boxes = cluster_flags(mask, bound);
  EXPECT_GE(boxes.size(), 2u);  // a diagonal can't be one efficient box
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(covered(boxes, i, i));
}

TEST_F(CleverTest, HierarchyConstruction) {
  Simulation sim(small_config("sedov"));
  const auto& levels = sim.levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0].nx, 32);
  EXPECT_EQ(levels[1].nx, 64);
  EXPECT_EQ(levels[2].nx, 128);
  EXPECT_NEAR(levels[1].dx, levels[0].dx / 2.0, 1e-15);
  // Level 0 tiles the whole domain.
  std::int64_t cells = 0;
  for (const auto& patch : levels[0].patches) cells += patch.box.cells();
  EXPECT_EQ(cells, 32 * 32);
  // Sedov's hot disc triggers refinement at construction.
  EXPECT_FALSE(levels[1].patches.empty());
}

TEST_F(CleverTest, ProperNesting) {
  Simulation sim(small_config("sedov"));
  sim.run(6);
  const auto& levels = sim.levels();
  for (std::size_t l = 1; l < levels.size(); ++l) {
    for (const auto& fine : levels[l].patches) {
      // Every fine cell's parent cell lies in some level l-1 patch.
      const Box parent_box = fine.box.coarsen(2);
      for (int j = parent_box.j0; j <= parent_box.j1; ++j) {
        for (int i = parent_box.i0; i <= parent_box.i1; ++i) {
          bool found = false;
          for (const auto& coarse : levels[l - 1].patches) {
            if (coarse.box.contains(i, j)) {
              found = true;
              break;
            }
          }
          ASSERT_TRUE(found) << "level " << l << " cell (" << i << "," << j << ") not nested";
        }
      }
    }
  }
}

TEST_F(CleverTest, PatchesStayInsideLevelBounds) {
  Simulation sim(small_config("triple_point"));
  sim.run(5);
  for (const auto& level : sim.levels()) {
    for (const auto& patch : level.patches) {
      EXPECT_GE(patch.box.i0, 0);
      EXPECT_GE(patch.box.j0, 0);
      EXPECT_LT(patch.box.i1, level.nx);
      EXPECT_LT(patch.box.j1, level.ny);
    }
  }
}

TEST_F(CleverTest, MassApproximatelyConserved) {
  Simulation sim(small_config("sod"));
  const double before = sim.total_mass();
  sim.run(10);
  const double after = sim.total_mass();
  EXPECT_NEAR(after / before, 1.0, 0.05);
}

TEST_F(CleverTest, FieldsStayFinitePositive) {
  for (const char* problem : {"sod", "sedov", "triple_point"}) {
    Simulation sim(small_config(problem));
    sim.run(8);
    for (const auto& level : sim.levels()) {
      for (const auto& patch : level.patches) {
        for (int j = patch.box.j0; j <= patch.box.j1; ++j) {
          for (int i = patch.box.i0; i <= patch.box.i1; ++i) {
            const auto c = static_cast<std::size_t>(patch.idx(i, j));
            ASSERT_TRUE(std::isfinite(patch.rho[c])) << problem;
            ASSERT_GT(patch.rho[c], 0.0) << problem;
            ASSERT_TRUE(std::isfinite(patch.en[c])) << problem;
          }
        }
      }
    }
  }
}

TEST_F(CleverTest, SodShockMovesRight) {
  Simulation sim(small_config("sod"));
  sim.run(30);  // dt follows the finest level; the shock needs ~t=0.05
  // Density right of the diaphragm rises above its initial 0.125 as the
  // shock propagates into the low-density region.
  const auto& base = sim.levels()[0];
  double max_right = 0.0;
  for (const auto& patch : base.patches) {
    for (int j = patch.box.j0; j <= patch.box.j1; ++j) {
      for (int i = patch.box.i0; i <= patch.box.i1; ++i) {
        if ((i + 0.5) * base.dx > 0.55) {
          max_right = std::max(max_right, patch.rho[static_cast<std::size_t>(patch.idx(i, j))]);
        }
      }
    }
  }
  EXPECT_GT(max_right, 0.15);
}

TEST_F(CleverTest, SecondOrderStableAndConservative) {
  CleverConfig cfg = small_config("sod");
  cfg.second_order = true;
  Simulation sim(cfg);
  const double before = sim.total_mass();
  sim.run(20);
  EXPECT_NEAR(sim.total_mass() / before, 1.0, 0.05);
  for (const auto& level : sim.levels()) {
    for (const auto& patch : level.patches) {
      for (int j = patch.box.j0; j <= patch.box.j1; ++j) {
        for (int i = patch.box.i0; i <= patch.box.i1; ++i) {
          ASSERT_TRUE(std::isfinite(patch.rho[static_cast<std::size_t>(patch.idx(i, j))]));
        }
      }
    }
  }
}

TEST_F(CleverTest, SecondOrderSharpensTheShock) {
  // MUSCL is less diffusive: the Sod density profile's transition region
  // (cells strictly between the left and right plateau values) is no wider
  // than first order's.
  auto transition_cells = [](bool second_order) {
    CleverConfig cfg;
    cfg.problem = "sod";
    cfg.coarse_cells = 64;
    cfg.max_levels = 1;  // single level isolates the scheme comparison
    cfg.second_order = second_order;
    Simulation sim(cfg);
    sim.run(30);
    int count = 0;
    const int mid_j = 32;
    for (const auto& patch : sim.levels()[0].patches) {
      if (mid_j < patch.box.j0 || mid_j > patch.box.j1) continue;
      for (int i = patch.box.i0; i <= patch.box.i1; ++i) {
        const double rho = patch.rho[static_cast<std::size_t>(patch.idx(i, mid_j))];
        if (rho > 0.15 && rho < 0.92) ++count;
      }
    }
    return count;
  };
  const int first = transition_cells(false);
  const int second = transition_cells(true);
  EXPECT_GT(first, 0);
  EXPECT_LE(second, first);
}

TEST_F(CleverTest, SecondOrderUsesItsOwnKernels) {
  Runtime::instance().reset_stats();
  CleverConfig cfg = small_config("sedov");
  cfg.second_order = true;
  Simulation sim(cfg);
  sim.run(2);
  const auto& stats = Runtime::instance().stats();
  EXPECT_TRUE(stats.per_kernel.count("clover:flux_calc_x_muscl"));
  EXPECT_FALSE(stats.per_kernel.count("clover:flux_calc_x"));
}

TEST_F(CleverTest, TriplePointGeneratesVorticity) {
  // The paper's triple-point deck drives a shock along a density interface,
  // generating vorticity (nonzero y-momentum from an initially x-only flow).
  Simulation sim(small_config("triple_point"));
  sim.run(25);
  double max_my = 0.0;
  for (const auto& patch : sim.levels()[0].patches) {
    for (int j = patch.box.j0; j <= patch.box.j1; ++j) {
      for (int i = patch.box.i0; i <= patch.box.i1; ++i) {
        max_my = std::max(max_my,
                          std::fabs(patch.my[static_cast<std::size_t>(patch.idx(i, j))]));
      }
    }
  }
  EXPECT_GT(max_my, 1e-3);
}

TEST_F(CleverTest, RegridTracksTheShock) {
  Simulation sim(small_config("sedov"));
  const std::size_t before = sim.patch_count();
  sim.run(16);  // includes several regrids
  EXPECT_GT(sim.patch_count(), 0u);
  // Patch population changes as the shock expands.
  EXPECT_NE(sim.patch_count(), before);
}

TEST_F(CleverTest, PatchSizesVary) {
  Simulation sim(small_config("sedov"));
  sim.run(8);
  std::int64_t smallest = 1 << 30, largest = 0;
  for (const auto& level : sim.levels()) {
    for (const auto& patch : level.patches) {
      smallest = std::min(smallest, patch.box.cells());
      largest = std::max(largest, patch.box.cells());
    }
  }
  EXPECT_GT(largest, 4 * smallest);  // the paper's input-dependence driver
}

TEST_F(CleverTest, KernelPopulationLaunched) {
  Simulation sim(small_config("sedov"));
  sim.run(2);
  const auto& stats = Runtime::instance().stats();
  for (const char* id : {"clover:ideal_gas", "clover:calc_dt", "clover:flux_calc_x",
                         "clover:flux_calc_y", "clover:advec_cell", "clover:update_halo",
                         "clover:prolong", "clover:restrict", "clover:flag_cells"}) {
    EXPECT_TRUE(stats.per_kernel.count(id)) << id;
  }
}

TEST_F(CleverTest, PatchIdAnnotatedDuringKernels) {
  Runtime::instance().set_mode(Mode::Record);
  Simulation sim(small_config("sedov"));
  sim.run(1);
  bool saw_patch_id = false;
  for (const auto& record : Runtime::instance().records()) {
    if (record.count("patch_id")) {
      saw_patch_id = true;
      break;
    }
  }
  EXPECT_TRUE(saw_patch_id);
}

TEST_F(CleverTest, AsciiRenderingShape) {
  Simulation sim(small_config("sedov"));
  sim.run(4);
  const std::string frame = sim.render_ascii(40);
  // 20 rows of 40 columns plus newlines.
  EXPECT_EQ(frame.size(), 41u * 20u);
  EXPECT_EQ(std::count(frame.begin(), frame.end(), '\n'), 20);
  // The blast produces at least two distinct density glyphs and patch marks.
  std::set<char> glyphs(frame.begin(), frame.end());
  glyphs.erase('\n');
  EXPECT_GE(glyphs.size(), 2u);
  EXPECT_TRUE(glyphs.count('+'));  // refined patches exist around the disc
}

TEST_F(CleverTest, ApplicationInterface) {
  auto app = apps::make_cleverleaf();
  EXPECT_EQ(app->name(), "CleverLeaf");
  EXPECT_EQ(app->problems(),
            (std::vector<std::string>{"sod", "sedov", "triple_point"}));
  Runtime::instance().reset_stats();
  app->run(apps::RunConfig{"sod", 32, 2});
  EXPECT_GT(Runtime::instance().stats().invocations, 0);
}
