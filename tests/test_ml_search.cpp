// Unit tests for the two-stage tuning search engine: typed-lane spaces, the
// deterministic evolutionary operators, budget accounting, dominance
// early-abort, and full runs against synthetic objectives. Everything is
// seeded, so each assertion pins one reproducible trajectory.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ml/search/space.hpp"
#include "ml/search/two_stage.hpp"

using namespace apollo::ml::search;

namespace {

Space small_space() {
  return Space{{Lane{"policy", {0, 1}}, Lane{"chunk", {0, 1, 2, 4, 8, 16, 32, 64}}}};
}

double lane_value_objective(const Space& space, const Point& point) {
  // Convex in the chunk lane with the optimum at value 8, plus a policy
  // penalty: the unique global optimum is (policy=1, chunk=8).
  const double chunk = static_cast<double>(space.value(point, 1));
  const double policy = static_cast<double>(space.value(point, 0));
  return std::abs(chunk - 8.0) + (policy == 0.0 ? 5.0 : 0.0) + 1.0;
}

}  // namespace

TEST(SearchSpace, EncodeDecodeRoundTrip) {
  const Space space = small_space();
  EXPECT_EQ(space.lane_count(), 2u);
  EXPECT_EQ(space.size(), 16u);
  for (std::size_t flat = 0; flat < space.size(); ++flat) {
    EXPECT_EQ(space.encode(space.decode(flat)), flat);
  }
  const Point point{1, 3};
  EXPECT_EQ(space.value(point, 0), 1);
  EXPECT_EQ(space.value(point, 1), 4);
  EXPECT_EQ(Space::distance({0, 7}, {1, 2}), 6u);
}

TEST(SearchSpace, RejectsDegenerateLanes) {
  EXPECT_THROW((Space{std::vector<Lane>{}}), std::invalid_argument);
  EXPECT_THROW((Space{{Lane{"empty", {}}}}), std::invalid_argument);
}

TEST(TwoStage, EffectiveBudgetFloorsAndCaps) {
  SearchConfig config;
  config.budget_fraction = 0.10;
  EXPECT_EQ(TwoStageSearch(config).effective_budget(128, 2), 13u);  // ceil(12.8)
  config.budget = 3;
  EXPECT_EQ(TwoStageSearch(config).effective_budget(128, 2), 4u);  // anchors + 2 floor
  config.budget = 1000;
  EXPECT_EQ(TwoStageSearch(config).effective_budget(128, 2), 128u);  // space cap
}

TEST(TwoStage, CrossoverTakesEveryLaneFromAParent) {
  Rng rng(42);
  const Point a{0, 1, 2, 3};
  const Point b{3, 2, 1, 0};
  for (int rep = 0; rep < 64; ++rep) {
    const Point child = TwoStageSearch::crossover(a, b, rng);
    ASSERT_EQ(child.size(), a.size());
    for (std::size_t l = 0; l < child.size(); ++l) {
      EXPECT_TRUE(child[l] == a[l] || child[l] == b[l]) << "lane " << l;
    }
  }
  // Deterministic: the same seed replays the same child sequence.
  Rng rng1(7), rng2(7);
  EXPECT_EQ(TwoStageSearch::crossover(a, b, rng1), TwoStageSearch::crossover(a, b, rng2));
}

TEST(TwoStage, MutateStaysInBoundsAndIsDeterministic) {
  const Space space = small_space();
  Rng rng1(11), rng2(11);
  bool changed = false;
  for (int rep = 0; rep < 128; ++rep) {
    const Point base{static_cast<std::size_t>(rep) % 2, static_cast<std::size_t>(rep) % 8};
    const Point m1 = TwoStageSearch::mutate(space, base, 3, rng1);
    const Point m2 = TwoStageSearch::mutate(space, base, 3, rng2);
    EXPECT_EQ(m1, m2);
    for (std::size_t l = 0; l < m1.size(); ++l) {
      EXPECT_LT(m1[l], space.lane(l).values.size());
    }
    if (m1 != base) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(TwoStage, StepScheduleHalvesPerGeneration) {
  EXPECT_EQ(TwoStageSearch::step_for_generation(16, 0), 8u);
  EXPECT_EQ(TwoStageSearch::step_for_generation(16, 1), 4u);
  EXPECT_EQ(TwoStageSearch::step_for_generation(16, 2), 2u);
  EXPECT_EQ(TwoStageSearch::step_for_generation(16, 3), 1u);
  EXPECT_EQ(TwoStageSearch::step_for_generation(16, 10), 1u);  // floor
  EXPECT_EQ(TwoStageSearch::step_for_generation(1, 0), 1u);
}

TEST(TwoStage, TournamentPrefersFitterEntrants) {
  const std::vector<double> fitness{5.0, 1.0, 3.0, 9.0};
  Rng rng(123);
  // A tournament as large as several population sizes almost surely samples
  // the argmin; with a fixed seed this is exact.
  for (int rep = 0; rep < 16; ++rep) {
    EXPECT_EQ(TwoStageSearch::tournament_select(fitness, 64, rng), 1u);
  }
  // Tournament of one is a plain draw, but always in range.
  for (int rep = 0; rep < 16; ++rep) {
    EXPECT_LT(TwoStageSearch::tournament_select(fitness, 1, rng), fitness.size());
  }
}

TEST(TwoStage, DiversifyKeepsTopRankAndSpreadsOut) {
  Space line{{Lane{"v", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}}};
  std::vector<Point> ranked;
  for (std::size_t i = 0; i < 10; ++i) ranked.push_back({i});
  const auto picked = TwoStageSearch::diversify(line, ranked, 3);
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0], (Point{0}));  // the model's favourite always seeds
  EXPECT_EQ(picked[1], (Point{9}));  // then the farthest point
  // All distinct.
  EXPECT_NE(picked[2], picked[0]);
  EXPECT_NE(picked[2], picked[1]);
}

TEST(TwoStage, PerfectModelFindsOptimumUnderFractionBudget) {
  const Space space = small_space();
  SearchConfig config;
  config.budget_fraction = 0.5;
  config.seed_k = 4;
  config.generations = 3;
  const auto objective = [&](const Point& point) { return lane_value_objective(space, point); };
  const Result result = TwoStageSearch(config).run(space, objective, objective);
  EXPECT_EQ(space.value(result.best, 0), 1);
  EXPECT_EQ(space.value(result.best, 1), 8);
  EXPECT_DOUBLE_EQ(result.best_seconds, 1.0);
  EXPECT_LE(result.stats.measured, 8u);  // half of the 16-point space
  EXPECT_EQ(result.stats.skipped, space.size() - result.stats.measured);
}

TEST(TwoStage, MisleadingModelStillRefinesByMeasurement) {
  const Space space = small_space();
  SearchConfig config;
  config.budget = 12;
  config.seed_k = 4;
  config.generations = 4;
  // The model inverts the truth, so stage 1 seeds in the wrong region; the
  // evolutionary stage must climb out using measured fitness alone.
  const auto truth = [&](const Point& point) { return lane_value_objective(space, point); };
  const auto wrong = [&](const Point& point) { return -lane_value_objective(space, point); };
  const Result result = TwoStageSearch(config).run(space, wrong, truth);
  double model_pick = std::numeric_limits<double>::infinity();
  for (std::size_t flat = 0; flat < space.size(); ++flat) {
    const Point point = space.decode(flat);
    if (wrong(point) < model_pick) model_pick = truth(point);
  }
  // Measured refinement beats trusting the (wrong) model outright.
  EXPECT_LT(result.best_seconds, model_pick);
  EXPECT_LE(result.stats.measured, 12u);
}

TEST(TwoStage, DominanceAbortsHopelessConfigurations) {
  const Space space = small_space();
  SearchConfig config;
  config.budget = 8;
  config.seed_k = 4;
  config.generations = 2;
  config.samples_per_config = 4;
  config.abort_margin = 1.5;
  std::size_t calls = 0;
  const auto measure = [&](const Point& point) {
    ++calls;
    // Anchor (0,0) is excellent; everything else is 10x worse.
    return point[0] == 0 && point[1] == 0 ? 1.0 : 10.0;
  };
  // A flat cheap objective keeps stage-1 ranking from touching `calls`.
  const Result result =
      TwoStageSearch(config).run(space, [](const Point&) { return 0.0; }, measure, {{0, 0}});
  ASSERT_FALSE(result.measurements.empty());
  // The anchor took all four samples (nothing dominated it)...
  EXPECT_EQ(result.measurements.front().samples, 4u);
  EXPECT_FALSE(result.measurements.front().aborted);
  // ...and every 10x-worse configuration aborted after one partial sample.
  std::size_t aborted = 0;
  for (std::size_t i = 1; i < result.measurements.size(); ++i) {
    if (result.measurements[i].aborted) {
      ++aborted;
      EXPECT_EQ(result.measurements[i].samples, 1u);
      EXPECT_DOUBLE_EQ(result.measurements[i].seconds, 10.0);
    }
  }
  EXPECT_EQ(aborted, result.stats.aborted);
  EXPECT_GT(aborted, 0u);
  // Early abort saved samples: strictly fewer calls than full sampling.
  EXPECT_LT(calls, result.stats.measured * config.samples_per_config);
}

TEST(TwoStage, BudgetExhaustionMidGenerationStopsCleanly) {
  const Space space = small_space();
  SearchConfig config;
  config.budget = 4;  // 2 anchors + 2: the floor
  config.seed_k = 8;  // wants more seeds than the budget allows
  config.generations = 5;
  const auto objective = [&](const Point& point) { return lane_value_objective(space, point); };
  const Result result =
      TwoStageSearch(config).run(space, objective, objective, {{0, 0}, {1, 0}});
  EXPECT_TRUE(result.stats.budget_exhausted);
  EXPECT_EQ(result.stats.measured, 4u);
  EXPECT_EQ(result.measurements.size(), 4u);
  EXPECT_EQ(result.stats.skipped, space.size() - 4u);
  // The anchors were measured before anything else.
  EXPECT_EQ(result.measurements[0].point, (Point{0, 0}));
  EXPECT_EQ(result.measurements[1].point, (Point{1, 0}));
  EXPECT_TRUE(std::isfinite(result.best_seconds));
}

TEST(TwoStage, CanonicalKeyDedupesEquivalentConfigurations) {
  const Space space = small_space();
  SearchConfig config;
  config.budget = 6;
  config.seed_k = 4;
  config.generations = 3;
  std::size_t measures = 0;
  const auto measure = [&](const Point& point) {
    ++measures;
    return lane_value_objective(space, point);
  };
  // Policy 0 ("seq") ignores the chunk lane: all such points share key 0.
  const auto canonical = [&](const Point& point) -> std::uint64_t {
    if (point[0] == 0) return 0;
    return static_cast<std::uint64_t>(space.encode(point)) + 1;
  };
  const Result result = TwoStageSearch(config).run(
      space, [&](const Point& point) { return lane_value_objective(space, point); }, measure,
      {{0, 0}, {0, 3}}, canonical);
  // The second anchor is canonically the first: one measurement, one hit.
  EXPECT_GE(result.stats.cache_hits, 1u);
  std::size_t seq_measured = 0;
  for (const auto& m : result.measurements) {
    if (m.point[0] == 0) ++seq_measured;
  }
  EXPECT_EQ(seq_measured, 1u);
  EXPECT_EQ(measures, result.stats.measured);  // one sample each, no duplicates
}

TEST(TwoStage, SameSeedReproducesTheFullTrajectory) {
  const Space space = small_space();
  SearchConfig config;
  config.budget = 10;
  config.seed_k = 4;
  config.generations = 3;
  config.seed = 0xfeedULL;
  const auto objective = [&](const Point& point) { return lane_value_objective(space, point); };
  const Result a = TwoStageSearch(config).run(space, objective, objective, {{0, 0}, {1, 0}});
  const Result b = TwoStageSearch(config).run(space, objective, objective, {{0, 0}, {1, 0}});
  ASSERT_EQ(a.measurements.size(), b.measurements.size());
  for (std::size_t i = 0; i < a.measurements.size(); ++i) {
    EXPECT_EQ(a.measurements[i].point, b.measurements[i].point);
    EXPECT_DOUBLE_EQ(a.measurements[i].seconds, b.measurements[i].seconds);
  }
  EXPECT_EQ(a.best, b.best);
}
