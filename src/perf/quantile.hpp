#pragma once

// Shared quantile helpers. Two consumers grew hand-rolled copies of the same
// math — the fork-join latency bench (percentile over raw sorted samples) and
// apollo_top (quantile reconstruction from cumulative histogram buckets) —
// and apollo_prof would have been a third. One definition, unit-tested once.

#include <utility>
#include <vector>

namespace apollo::perf {

/// Linear-interpolated quantile of an ascending-sorted sample vector.
/// q is clamped to [0, 1]; an empty vector yields 0.
[[nodiscard]] double percentile(const std::vector<double>& sorted, double q);

/// Quantile from cumulative `le` buckets (Prometheus-style: each pair is
/// {upper bound, cumulative count}), interpolated linearly within the
/// containing bucket and clamped to the last finite bound for the overflow
/// bucket. Zero count or no buckets yields 0.
[[nodiscard]] double bucket_quantile(const std::vector<std::pair<double, double>>& buckets,
                                     double count, double q);

}  // namespace apollo::perf
