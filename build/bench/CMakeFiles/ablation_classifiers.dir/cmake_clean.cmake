file(REMOVE_RECURSE
  "CMakeFiles/ablation_classifiers.dir/ablation_classifiers.cpp.o"
  "CMakeFiles/ablation_classifiers.dir/ablation_classifiers.cpp.o.d"
  "ablation_classifiers"
  "ablation_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
