#pragma once

// CART decision-tree classifier (gini impurity), the model family the paper
// selects for its tuners: easy to convert to nested conditionals, easy to
// prune to a depth budget, and cheap to evaluate at every kernel launch.
//
// The tree is stored as a flat node array so runtime evaluation is a short
// loop over cache-resident structs; `prune_to_depth` implements the paper's
// model-reduction knob (Fig. 10) and `feature_importances` the analysis
// behind Figs. 8-9 (mean decrease in impurity).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace apollo::ml {

struct TreeParams {
  int max_depth = 25;
  int min_samples_leaf = 2;
  int min_samples_split = 4;
};

class DecisionTree {
public:
  struct Node {
    int feature = -1;        ///< -1 marks a leaf
    double threshold = 0.0;  ///< go left when value <= threshold
    int left = -1;
    int right = -1;
    int label = 0;           ///< majority class (valid for every node)
    std::int64_t samples = 0;
    double impurity = 0.0;   ///< gini at this node
  };

  DecisionTree() = default;

  /// Train on the dataset. Feature/label names are copied in so a persisted
  /// model is self-describing.
  static DecisionTree fit(const Dataset& data, const TreeParams& params = {});

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] int depth() const noexcept;
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept { return feature_names_; }
  [[nodiscard]] const std::vector<std::string>& label_names() const noexcept { return label_names_; }

  /// Predicted class for one feature vector (indexed like feature_names()).
  [[nodiscard]] int predict(const std::vector<double>& features) const;
  [[nodiscard]] int predict(const double* features) const;

  /// predict(), additionally appending the node indices visited (root to
  /// leaf) to `path`. Telemetry's decision introspection records this so a
  /// live deployment can show *which* branch chose a variant.
  int predict_path(const double* features, std::vector<int>& path) const;

  [[nodiscard]] std::vector<int> predict_all(const Dataset& data) const;

  /// Fraction of dataset rows classified correctly.
  [[nodiscard]] double score(const Dataset& data) const;

  /// Mean-decrease-in-impurity importance per feature, normalized to sum 1
  /// (all-zero when the tree is a single leaf).
  [[nodiscard]] std::vector<double> feature_importances() const;

  /// Copy of this tree with every node deeper than `depth` collapsed into a
  /// majority-class leaf (depth 0 = root only).
  [[nodiscard]] DecisionTree prune_to_depth(int depth) const;

  /// Human-readable indented rendering (for logs and the Fig. 4 bench).
  [[nodiscard]] std::string to_text() const;

  /// Machine round-trip format for runtime model loading (the paper's
  /// "re-train without recompiling" property).
  void save(std::ostream& out) const;
  static DecisionTree load(std::istream& in);
  void save_file(const std::string& path) const;
  static DecisionTree load_file(const std::string& path);

private:
  std::vector<Node> nodes_;
  std::vector<std::string> feature_names_;
  std::vector<std::string> label_names_;

  friend class TreeBuilder;
};

}  // namespace apollo::ml
