#include "telemetry/introspect.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace apollo::telemetry {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

DecisionLog& DecisionLog::instance() {
  static DecisionLog log;
  return log;
}

void DecisionLog::set_per_kernel_limit(std::size_t limit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  limit_ = limit < 1 ? 1 : limit;
  for (auto& [kernel, decisions] : per_kernel_) {
    (void)kernel;
    while (decisions.size() > limit_) decisions.pop_front();
  }
}

void DecisionLog::record(Decision decision) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& decisions = per_kernel_[decision.kernel];
  decisions.push_back(std::move(decision));
  while (decisions.size() > limit_) decisions.pop_front();
  ++recorded_;
}

std::uint64_t DecisionLog::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::vector<Decision> DecisionLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Decision> out;
  for (const auto& [kernel, decisions] : per_kernel_) {
    (void)kernel;
    out.insert(out.end(), decisions.begin(), decisions.end());
  }
  return out;
}

void DecisionLog::write_json(std::ostream& out) const {
  for (const Decision& d : snapshot()) {
    out << "{\"kernel\":\"" << json_escape(d.kernel) << "\",\"ts_ns\":" << d.ts_ns
        << ",\"model_version\":" << d.model_version << ",\"predicted\":\""
        << json_escape(d.predicted) << "\",\"predicted_seconds\":"
        << json_number(d.predicted_seconds) << ",\"observed_seconds\":"
        << json_number(d.observed_seconds) << ",\"explored\":" << (d.explored ? "true" : "false")
        << ",\"features\":{";
    bool first = true;
    for (const auto& [name, value] : d.features) {
      if (!first) out << ",";
      first = false;
      out << "\"" << json_escape(name) << "\":" << json_number(value);
    }
    out << "},\"tree_path\":[";
    first = true;
    for (int node : d.tree_path) {
      if (!first) out << ",";
      first = false;
      out << node;
    }
    out << "]}\n";
  }
}

void DecisionLog::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("DecisionLog: cannot open " + tmp);
    write_json(out);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("DecisionLog: cannot rename " + tmp + " to " + path);
  }
}

void DecisionLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  per_kernel_.clear();
  recorded_ = 0;
}

}  // namespace apollo::telemetry
