file(REMOVE_RECURSE
  "CMakeFiles/test_core_model_set.dir/test_core_model_set.cpp.o"
  "CMakeFiles/test_core_model_set.dir/test_core_model_set.cpp.o.d"
  "test_core_model_set"
  "test_core_model_set.pdb"
  "test_core_model_set[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_model_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
