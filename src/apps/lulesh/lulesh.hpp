#pragma once

// mini-LULESH: Lagrangian Sedov shock hydrodynamics on a structured hex mesh.
// A faithful miniature of the LULESH proxy app's kernel population: every
// loop is an apollo::forall with LULESH's kernel structure (element sweeps,
// node sweeps, symmetry-plane node lists, and per-material-region element
// lists, including the tiny 11-iteration region loops). Physics is a
// simplified but genuine staggered leapfrog scheme: stress integration,
// nodal acceleration/velocity/position, hex-volume kinematics, monotonic-Q
// style artificial viscosity, and a per-region ideal-gas EOS pipeline.

#include <memory>

#include "apps/application.hpp"
#include "apps/lulesh/domain.hpp"

namespace apollo::apps::lulesh {

class Simulation {
public:
  /// Sedov setup on an edge_elems^3 mesh.
  explicit Simulation(int edge_elems, double initial_energy = 3.948746e+1);

  void step();
  void run(int steps);

  [[nodiscard]] const Domain& domain() const noexcept { return dom_; }
  [[nodiscard]] Domain& domain() noexcept { return dom_; }

private:
  void lagrangeNodal();
  void lagrangeElements();
  void applyMaterialModel();
  void calcTimeConstraints();

  Domain dom_;
};

}  // namespace apollo::apps::lulesh
