// ext_fleet_observability: cost and completeness of the fleet observability
// plane (extension).
//
// PR 6 gave the service subsystem a daemon that aggregates samples across
// clients; this experiment prices the plane layered on top of it — clients
// stamping trace context onto every SAMPLE_BATCH, shipping TELEMETRY
// snapshots of their metrics registries, and the daemon merging those into
// one fleet export, appending a JSONL event log, and tracking model
// staleness against an SLO. Observability that perturbs the system it
// observes is worse than none, so the run has two phases over an identical
// workload:
//
//   baseline — N in-process clients + daemon, observability plane off;
//   observed — the same fleet with the full plane on: fleet metrics file,
//              event log, staleness SLO, and per-client TELEMETRY shipping
//              on a tight (50 ms) cadence.
//
// Acceptance (exit 0):
//   - overhead: the observed phase's extra per-client transport time stays
//     under 5% of the phase's wall time (the ISSUE's gate);
//   - completeness: the merged export carries the fleet series and the
//     clients' own counters summed exactly; the event log names every
//     lifecycle event (connect/train/push/disconnect); every trained
//     generation has a lineage; at least one client measured a
//     lineage-attributed sample->swap pipeline latency.
//
// Usage: ext_fleet_observability [--clients N] [--out FILE]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/harness.hpp"
#include "online/model_registry.hpp"
#include "online/sample_buffer.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "sim/machine.hpp"

using namespace apollo;

namespace {

constexpr const char* kLoopId = "fleetobs:stream";
constexpr std::size_t kLaunches = 160;  ///< per client, both phases
constexpr long kCadenceMs = 2;          ///< app compute between launches

const std::int64_t kSizeDeck[] = {2000, 4000, 8000, 150000, 250000};
constexpr std::size_t kDeckSize = sizeof(kSizeDeck) / sizeof(kSizeDeck[0]);

instr::InstructionMix stream_mix() {
  return instr::MixBuilder{}.fp(2).load(2).store(1).build();
}

online::Sample make_sample(std::int64_t size, raja::PolicyType policy, double seconds) {
  online::Sample sample;
  sample.loop_id = kLoopId;
  sample.func = "FleetObsKernel";
  sample.index_type = "range";
  sample.mix = stream_mix();
  sample.num_indices = size;
  sample.num_segments = 1;
  sample.stride = 1;
  sample.policy = policy;
  sample.chunk = 0;
  sample.seconds = seconds;
  return sample;
}

void emit_launch(const sim::MachineModel& machine, online::SampleBuffer& buffer,
                 std::int64_t size, std::uint64_t* counter) {
  sim::CostQuery query;
  query.num_indices = size;
  query.num_segments = 1;
  query.mix = stream_mix();
  query.bytes_per_iteration = 24;
  query.threads = machine.config().cores;
  query.kernel_seed = std::hash<std::string>{}(kLoopId);
  query.policy = sim::PolicyKind::Sequential;
  const double seq = machine.measured_seconds(query, (*counter)++);
  query.policy = sim::PolicyKind::OpenMP;
  const double omp = machine.measured_seconds(query, (*counter)++);
  buffer.push(make_sample(size, raja::PolicyType::seq_segit_seq_exec, seq));
  buffer.push(make_sample(size, raja::PolicyType::seq_segit_omp_parallel_for_exec, omp));
}

struct PhaseResult {
  double wall_seconds = 0.0;
  double transport_seconds_per_client = 0.0;  ///< background-lane work, averaged
  std::uint64_t telemetry_shipped = 0;
  std::uint64_t pipeline_samples = 0;  ///< lineage-attributed latencies measured
  double pipeline_latency_max = 0.0;
  std::uint64_t generation = 0;
  std::uint64_t lineage_generations = 0;  ///< trained generations with non-empty lineage
  std::uint64_t slo_breaches = 0;
  // Read from the live merged export while the fleet was still connected
  // (the shutdown export legitimately reports zero connected clients).
  double exported_clients = -1.0;
  double exported_generation = -1.0;
  double exported_bench_counter = -1.0;
};

bool file_contains(const std::string& path, const char* needle) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str().find(needle) != std::string::npos;
}

/// The value of the first sample of `name` without labels in an exposition
/// file (-1 when absent).
double exposition_value(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) return std::atof(line.c_str() + name.size() + 1);
  }
  return -1.0;
}

/// Run one fleet phase: N clients over the same skewed deck, one daemon.
/// `observe` turns the whole plane on (fleet config + telemetry shipping +
/// per-client standalone registries feeding the shipments).
PhaseResult run_phase(const sim::MachineModel& machine, unsigned clients, bool observe,
                      const std::string& socket_path, const std::string& metrics_path,
                      const std::string& events_path) {
  service::DaemonConfig daemon_config;
  daemon_config.socket_path = socket_path;
  daemon_config.train_batch = 64;
  daemon_config.min_train_samples = 96;
  if (observe) {
    daemon_config.fleet.metrics_path = metrics_path;
    daemon_config.fleet.events_path = events_path;
    daemon_config.fleet.slo_ms = 60'000;  // present but far away: no false breaches
    daemon_config.fleet.export_ms = 100;
  }
  service::TrainerDaemon daemon(daemon_config);
  if (!daemon.start()) return {};

  std::vector<std::unique_ptr<online::SampleBuffer>> buffers;
  std::vector<std::unique_ptr<online::ModelRegistry>> registries;
  std::vector<std::unique_ptr<telemetry::MetricsRegistry>> metrics;
  std::vector<std::unique_ptr<service::ServiceClient>> svc;
  for (unsigned rank = 0; rank < clients; ++rank) {
    buffers.push_back(std::make_unique<online::SampleBuffer>(1u << 14));
    registries.push_back(std::make_unique<online::ModelRegistry>());
    metrics.push_back(std::make_unique<telemetry::MetricsRegistry>());
    service::ClientConfig config;
    config.socket_path = socket_path;
    config.batch = 32;
    config.retry_ms = 50;
    config.poll_ms = 2;
    config.client_name = "obs-rank-" + std::to_string(rank);
    config.telemetry_ship_ms = observe ? 50 : 0;
    svc.push_back(std::make_unique<service::ServiceClient>(buffers.back().get(),
                                                           registries.back().get(), config));
    if (observe) svc.back()->set_metrics_source(metrics.back().get());
    svc.back()->start();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (unsigned rank = 0; rank < clients; ++rank) {
    threads.emplace_back([&, rank] {
      std::uint64_t counter = rank * 104729ull;
      for (std::size_t launch = 0; launch < kLaunches; ++launch) {
        emit_launch(machine, *buffers[rank], kSizeDeck[(launch + rank) % kDeckSize], &counter);
        if (observe) {
          metrics[rank]
              ->counter("bench_fleet_launches_total", "Launches this client ran.")
              .inc();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(kCadenceMs));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // Let the tail of the pipeline settle: final batches, a last train, the
  // pushes, and one more telemetry beat.
  daemon.wait_generation(1, 2.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(observe ? 150 : 50));

  PhaseResult result;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (observe) {
    // The tick-cadence export ran during the settle window above, so the
    // file on disk reflects a connected fleet.
    result.exported_clients = exposition_value(metrics_path, "apollo_fleet_clients");
    result.exported_generation = exposition_value(metrics_path, "apollo_fleet_generation");
    result.exported_bench_counter =
        exposition_value(metrics_path, "bench_fleet_launches_total");
  }
  for (unsigned rank = 0; rank < clients; ++rank) {
    const auto status = svc[rank]->status();
    result.transport_seconds_per_client += status.transport_seconds;
    result.telemetry_shipped += status.telemetry_shipped;
    result.pipeline_samples += status.pipeline.size();
    for (const auto& sample : status.pipeline) {
      result.pipeline_latency_max = std::max(result.pipeline_latency_max, sample.latency_seconds);
    }
    svc[rank]->stop();
  }
  result.transport_seconds_per_client /= static_cast<double>(clients);
  result.generation = daemon.generation();
  for (std::uint64_t gen = 1; gen <= result.generation; ++gen) {
    if (!daemon.lineage(gen).empty()) result.lineage_generations += 1;
  }
  result.slo_breaches = daemon.stats().slo_breaches;
  daemon.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned clients = 3;
  std::string out_path = "BENCH_fleet_obs.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--clients") { if (const char* v = next()) clients = static_cast<unsigned>(std::atoi(v)); }
    else if (arg == "--out") { if (const char* v = next()) out_path = v; }
    else {
      std::fprintf(stderr, "usage: ext_fleet_observability [--clients N] [--out FILE]\n");
      return 2;
    }
  }
  if (clients < 2) clients = 2;

  bench::print_heading("Fleet observability plane: overhead and completeness",
                       "extension of SV (production serving observability)");
  const sim::MachineModel machine{};
  const std::string tag = std::to_string(::getpid());
  const std::string socket_path = "/tmp/apollo_fleet_obs." + tag + ".sock";
  const std::string metrics_path = "/tmp/apollo_fleet_obs." + tag + ".prom";
  const std::string events_path = "/tmp/apollo_fleet_obs." + tag + ".jsonl";

  const PhaseResult baseline =
      run_phase(machine, clients, /*observe=*/false, socket_path, metrics_path, events_path);
  std::printf("baseline: %.2f s wall, %.1f ms/client transport, generation %llu\n",
              baseline.wall_seconds, baseline.transport_seconds_per_client * 1e3,
              static_cast<unsigned long long>(baseline.generation));

  const PhaseResult observed =
      run_phase(machine, clients, /*observe=*/true, socket_path, metrics_path, events_path);
  std::printf("observed: %.2f s wall, %.1f ms/client transport, generation %llu, "
              "%llu telemetry frames, %llu pipeline samples (max %.1f ms)\n",
              observed.wall_seconds, observed.transport_seconds_per_client * 1e3,
              static_cast<unsigned long long>(observed.generation),
              static_cast<unsigned long long>(observed.telemetry_shipped),
              static_cast<unsigned long long>(observed.pipeline_samples),
              observed.pipeline_latency_max * 1e3);

  // --- overhead gate ---------------------------------------------------------
  // The plane's cost is the extra background-lane work it adds per client;
  // charged against the observed phase's wall time. max(0, ...) because on a
  // quiet machine the delta can be measurement noise below zero.
  const double extra_transport = std::max(
      0.0, observed.transport_seconds_per_client - baseline.transport_seconds_per_client);
  const double overhead_fraction =
      observed.wall_seconds > 0 ? extra_transport / observed.wall_seconds : 1.0;
  const bool pass_overhead = overhead_fraction < 0.05;
  std::printf("observability overhead: %.2f ms/client extra transport over %.2f s wall "
              "(%.2f%%, gate < 5%%)\n",
              extra_transport * 1e3, observed.wall_seconds, overhead_fraction * 100.0);

  // --- completeness gates ----------------------------------------------------
  const double fleet_clients = observed.exported_clients;
  const double fleet_generation = observed.exported_generation;
  const double merged_launches = observed.exported_bench_counter;
  const double expected_launches = static_cast<double>(clients) * kLaunches;
  // Clients ship on a cadence, so the last shipment may trail the final
  // launches; the merged sum must still cover most of the work and never
  // exceed it.
  const bool pass_merge = merged_launches > 0.5 * expected_launches &&
                          merged_launches <= expected_launches &&
                          fleet_clients >= static_cast<double>(clients) &&
                          fleet_generation >= 1.0;
  const bool pass_events = file_contains(events_path, "\"event\":\"connect\"") &&
                           file_contains(events_path, "\"event\":\"train\"") &&
                           file_contains(events_path, "\"event\":\"push\"") &&
                           file_contains(events_path, "\"event\":\"disconnect\"");
  const bool pass_lineage = observed.generation >= 1 &&
                            observed.lineage_generations == observed.generation &&
                            observed.pipeline_samples >= 1;
  const bool pass_telemetry = observed.telemetry_shipped >= clients;
  const bool pass_slo = observed.slo_breaches == 0;  // SLO was 60 s away
  std::printf("merged export: clients=%.0f generation=%.0f bench counter %.0f/%.0f\n",
              fleet_clients, fleet_generation, merged_launches, expected_launches);
  std::printf("completeness: merge=%s events=%s lineage=%s telemetry=%s slo=%s\n",
              pass_merge ? "ok" : "FAIL", pass_events ? "ok" : "FAIL",
              pass_lineage ? "ok" : "FAIL", pass_telemetry ? "ok" : "FAIL",
              pass_slo ? "ok" : "FAIL");

  const bool pass =
      pass_overhead && pass_merge && pass_events && pass_lineage && pass_telemetry && pass_slo;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"clients\": " << clients << ",\n"
      << "  \"launches_per_client\": " << kLaunches << ",\n"
      << "  \"baseline_wall_seconds\": " << baseline.wall_seconds << ",\n"
      << "  \"baseline_transport_seconds_per_client\": "
      << baseline.transport_seconds_per_client << ",\n"
      << "  \"observed_wall_seconds\": " << observed.wall_seconds << ",\n"
      << "  \"observed_transport_seconds_per_client\": "
      << observed.transport_seconds_per_client << ",\n"
      << "  \"extra_transport_seconds_per_client\": " << extra_transport << ",\n"
      << "  \"observability_overhead_fraction\": " << overhead_fraction << ",\n"
      << "  \"telemetry_shipped\": " << observed.telemetry_shipped << ",\n"
      << "  \"pipeline_samples\": " << observed.pipeline_samples << ",\n"
      << "  \"pipeline_latency_max_seconds\": " << observed.pipeline_latency_max << ",\n"
      << "  \"daemon_generation\": " << observed.generation << ",\n"
      << "  \"lineage_generations\": " << observed.lineage_generations << ",\n"
      << "  \"slo_breaches\": " << observed.slo_breaches << ",\n"
      << "  \"merged_bench_counter\": " << merged_launches << ",\n"
      << "  \"pass_overhead\": " << (pass_overhead ? "true" : "false") << ",\n"
      << "  \"pass_merge\": " << (pass_merge ? "true" : "false") << ",\n"
      << "  \"pass_events\": " << (pass_events ? "true" : "false") << ",\n"
      << "  \"pass_lineage\": " << (pass_lineage ? "true" : "false") << ",\n"
      << "  \"pass_telemetry\": " << (pass_telemetry ? "true" : "false") << ",\n"
      << "  \"pass_slo\": " << (pass_slo ? "true" : "false") << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  ::unlink(metrics_path.c_str());
  ::unlink(events_path.c_str());

  std::printf("%s: overhead %.2f%% (gate < 5%%), merged counter %.0f, lineage %llu/%llu "
              "generations, %llu pipeline latencies\n",
              pass ? "PASS" : "FAIL", overhead_fraction * 100.0, merged_launches,
              static_cast<unsigned long long>(observed.lineage_generations),
              static_cast<unsigned long long>(observed.generation),
              static_cast<unsigned long long>(observed.pipeline_samples));
  return pass ? 0 : 1;
}
