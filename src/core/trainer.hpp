#pragma once

// The model-generation pipeline (the paper's Python package, natively):
// read training records, group samples by unique feature vector, label each
// group with the parameter value whose mean measured runtime is lowest
// (§III-B), and fit a decision tree. The intermediate LabeledData keeps the
// per-group runtime table so experiment harnesses can also price the oracle
// ("best possible") and any static choice on exactly the same samples.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/tuner_model.hpp"
#include "ml/dataset.hpp"
#include "perf/record.hpp"

namespace apollo {

struct LabeledData {
  ml::Dataset dataset;  ///< one row per unique feature vector; label = argmin runtime

  /// Per row: label index -> mean measured runtime over the samples mapping
  /// to that row (seconds). Every trained label appears for every row when
  /// training data came from a full parameter sweep.
  std::vector<std::map<int, double>> runtimes;

  /// Categorical encodings fixed at training time (feature -> categories).
  std::map<std::string, std::vector<std::string>> dictionaries;

  /// Provenance per row: originating loop_id and number of samples merged.
  std::vector<std::string> row_loop_ids;
  std::vector<std::int64_t> row_counts;

  /// Mean runtime over all rows (weighted by row_counts) under: the tree's
  /// predictions, a fixed label, or the per-row oracle. Used by Figs. 2/6/7.
  [[nodiscard]] double total_runtime_oracle() const;
  [[nodiscard]] double total_runtime_static(int label) const;
  [[nodiscard]] double total_runtime_predicted(const std::vector<int>& predictions) const;
};

class Trainer {
public:
  /// Build the labeled dataset for one tuned parameter. Policy uses every
  /// sample; ChunkSize uses only OpenMP samples (chunking is meaningless for
  /// sequential execution).
  [[nodiscard]] static LabeledData build_labeled_data(
      const std::vector<perf::SampleRecord>& records, TunedParameter parameter);

  /// Fit a model on previously labeled data.
  [[nodiscard]] static TunerModel train(const LabeledData& data, TunedParameter parameter,
                                        const ml::TreeParams& params = {});

  /// records -> model in one step.
  [[nodiscard]] static TunerModel train(const std::vector<perf::SampleRecord>& records,
                                        TunedParameter parameter,
                                        const ml::TreeParams& params = {});
};

}  // namespace apollo
