file(REMOVE_RECURSE
  "CMakeFiles/fig02_dynamic_vs_static.dir/fig02_dynamic_vs_static.cpp.o"
  "CMakeFiles/fig02_dynamic_vs_static.dir/fig02_dynamic_vs_static.cpp.o.d"
  "fig02_dynamic_vs_static"
  "fig02_dynamic_vs_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dynamic_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
