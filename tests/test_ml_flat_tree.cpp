// FlatTree / FlatForest: compiled branchless model tables. The load-bearing
// property is bit-for-bit prediction parity with the pointer walk on every
// input — including NaN, infinities, and exact-threshold values — plus the
// all-or-nothing fallback: a tree that does not fit the packed layout
// compiles to !ok() rather than to a lossy table.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/flat_tree.hpp"
#include "ml/random_forest.hpp"

using apollo::ml::Dataset;
using apollo::ml::DecisionTree;
using apollo::ml::FlatForest;
using apollo::ml::FlatTree;
using apollo::ml::ForestParams;
using apollo::ml::RandomForest;
using apollo::ml::TreeParams;

namespace {

TreeParams loose() {
  TreeParams p;
  p.min_samples_leaf = 1;
  p.min_samples_split = 2;
  return p;
}

/// Random multi-class dataset: `features` columns, `classes` labels, with a
/// feature-dependent label rule plus noise so fitted trees grow real depth.
Dataset random_dataset(std::mt19937_64& rng, std::size_t features, int classes,
                       std::size_t rows) {
  std::vector<std::string> feature_names;
  for (std::size_t f = 0; f < features; ++f) feature_names.push_back("f" + std::to_string(f));
  std::vector<std::string> label_names;
  for (int c = 0; c < classes; ++c) label_names.push_back("c" + std::to_string(c));
  Dataset d(feature_names, label_names);
  std::uniform_real_distribution<double> value(-10.0, 10.0);
  std::uniform_int_distribution<int> noise(0, 9);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(features);
    double sum = 0.0;
    for (auto& v : row) {
      v = value(rng);
      sum += v;
    }
    int label = static_cast<int>(std::fabs(sum)) % classes;
    if (noise(rng) == 0) label = (label + 1) % classes;  // 10% label noise
    d.add_row(row, label);
  }
  return d;
}

/// Feature vectors that stress the walk: random values, exact node
/// thresholds (the `<=` boundary), +/-inf, and NaN (which the pointer walk
/// sends right — parity must preserve that).
std::vector<std::vector<double>> probe_vectors(std::mt19937_64& rng, const DecisionTree& tree,
                                               std::size_t features, std::size_t count) {
  std::vector<std::vector<double>> probes;
  std::uniform_real_distribution<double> value(-12.0, 12.0);
  std::uniform_int_distribution<std::size_t> pick_node(0, tree.node_count() - 1);
  std::uniform_int_distribution<std::size_t> pick_feature(0, features - 1);
  std::uniform_int_distribution<int> special(0, 9);
  for (std::size_t p = 0; p < count; ++p) {
    std::vector<double> v(features);
    for (auto& x : v) x = value(rng);
    switch (special(rng)) {
      case 0: v[pick_feature(rng)] = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v[pick_feature(rng)] = std::numeric_limits<double>::infinity(); break;
      case 2: v[pick_feature(rng)] = -std::numeric_limits<double>::infinity(); break;
      case 3: {
        // Land exactly on a split threshold to exercise the <= boundary.
        const auto& node = tree.nodes()[pick_node(rng)];
        if (node.feature >= 0) v[static_cast<std::size_t>(node.feature)] = node.threshold;
        break;
      }
      default: break;
    }
    probes.push_back(std::move(v));
  }
  return probes;
}

}  // namespace

TEST(FlatTree, NodeLayoutIsPackedAndAligned) {
  static_assert(sizeof(FlatTree::Node) == 16);
  Dataset d({"x"}, {"lo", "hi"});
  for (int i = 0; i < 40; ++i) d.add_row({static_cast<double>(i)}, i > 10 ? 1 : 0);
  const DecisionTree tree = DecisionTree::fit(d, loose());
  const FlatTree flat = FlatTree::compile(tree);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.node_count(), tree.node_count());
  EXPECT_EQ(flat.depth(), tree.depth());
  EXPECT_EQ(flat.bytes(), tree.node_count() * sizeof(FlatTree::Node));
  EXPECT_EQ(flat.cache_lines(), (flat.bytes() + 63) / 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&flat.node(0)) % 64, 0u);
  // Preorder re-layout: every internal node's left child is adjacent.
  for (std::size_t n = 0; n < flat.node_count(); ++n) {
    if (flat.node(n).feature != FlatTree::kLeafFeature) {
      EXPECT_EQ(flat.node(n).left_delta, 1u);
      EXPECT_GT(flat.node(n).right_delta, 1u);
    }
  }
}

TEST(FlatTree, EmptyTreeDoesNotCompile) {
  const DecisionTree tree;
  const FlatTree flat = FlatTree::compile(tree);
  EXPECT_FALSE(flat.ok());
}

TEST(FlatTree, SingleLeafCompilesToOneNode) {
  Dataset d({"x"}, {"only", "other"});
  for (int i = 0; i < 10; ++i) d.add_row({static_cast<double>(i)}, 1);
  const DecisionTree tree = DecisionTree::fit(d);
  const FlatTree flat = FlatTree::compile(tree);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.node_count(), 1u);
  EXPECT_EQ(flat.depth(), 0);
  const double x = 3.0;
  EXPECT_EQ(flat.predict(&x), 1);
}

TEST(FlatTree, ParityFuzzRandomTreesRandomVectors) {
  std::mt19937_64 rng(0xf1a77ee5ULL);
  std::uniform_int_distribution<std::size_t> feature_count(2, 6);
  std::uniform_int_distribution<int> class_count(2, 4);
  for (int round = 0; round < 25; ++round) {
    const std::size_t features = feature_count(rng);
    const int classes = class_count(rng);
    const Dataset d = random_dataset(rng, features, classes, 250);
    const DecisionTree tree = DecisionTree::fit(d, loose());
    ASSERT_FALSE(tree.empty());
    const FlatTree flat = FlatTree::compile(tree);
    ASSERT_TRUE(flat.ok());
    std::vector<int> path;
    for (const auto& v : probe_vectors(rng, tree, features, 200)) {
      const int pointer_label = tree.predict(v.data());
      path.clear();
      const int path_label = tree.predict_path(v.data(), path);
      const int flat_label = flat.predict(v.data());
      ASSERT_EQ(flat_label, pointer_label)
          << "round " << round << ": flat diverged from pointer walk";
      ASSERT_EQ(flat_label, path_label) << "round " << round << ": predict_path disagrees";
    }
  }
}

TEST(FlatTree, ParitySurvivesPruneAndSaveLoad) {
  std::mt19937_64 rng(0x5eedULL);
  const Dataset d = random_dataset(rng, 4, 3, 300);
  const DecisionTree tree = DecisionTree::fit(d, loose());
  const DecisionTree pruned = tree.prune_to_depth(2);
  std::stringstream io;
  tree.save(io);
  const DecisionTree reloaded = DecisionTree::load(io);
  for (const DecisionTree* t : {&tree, &pruned, &reloaded}) {
    const FlatTree flat = FlatTree::compile(*t);
    ASSERT_TRUE(flat.ok());
    for (const auto& v : probe_vectors(rng, *t, 4, 150)) {
      ASSERT_EQ(flat.predict(v.data()), t->predict(v.data()));
    }
  }
}

TEST(FlatTree, NonPreorderLoadedTreeCompilesWithParity) {
  // The loader accepts any forward-pointing layout, not just the builder's
  // preorder; compile() must re-lay it out rather than assume adjacency.
  // Root's children are swapped in storage: left=2, right=1.
  std::stringstream io;
  io << "apollo-tree 1\n"
     << "features 1 x\n"
     << "labels 2 lo hi\n"
     << "nodes 3\n"
     << "0 5 2 1 0 10 0.5\n"
     << "-1 0 -1 -1 1 4 0\n"
     << "-1 0 -1 -1 0 6 0\n";
  const DecisionTree tree = DecisionTree::load(io);
  const FlatTree flat = FlatTree::compile(tree);
  ASSERT_TRUE(flat.ok());
  for (double x : {-1.0, 4.9, 5.0, 5.1, 100.0, std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_EQ(flat.predict(&x), tree.predict(&x)) << "x=" << x;
  }
}

TEST(FlatTree, OversizedSubtreeFallsBackToPointerWalk) {
  // A left spine deep enough that the root's right-child delta exceeds
  // u16: compile() must refuse (return !ok()), never truncate.
  constexpr int kDepth = 40000;  // left subtree of root: 2*kDepth-1 > 65535
  std::stringstream io;
  io << "apollo-tree 1\n"
     << "features 1 x\n"
     << "labels 2 lo hi\n"
     << "nodes " << (2 * kDepth + 1) << '\n';
  for (int i = 0; i < kDepth; ++i) {
    const int left = i + 1 < kDepth ? i + 1 : kDepth;
    io << "0 " << (0.5 - i) << ' ' << left << ' ' << (kDepth + 1 + i) << " 0 1 0.1\n";
  }
  io << "-1 0 -1 -1 0 1 0\n";  // terminal left leaf (index kDepth)
  for (int i = 0; i < kDepth; ++i) io << "-1 0 -1 -1 1 1 0\n";
  const DecisionTree tree = DecisionTree::load(io);
  ASSERT_EQ(tree.node_count(), static_cast<std::size_t>(2 * kDepth + 1));
  const FlatTree flat = FlatTree::compile(tree);
  EXPECT_FALSE(flat.ok());
  // The pointer walk still serves predictions.
  const double x = 100.0;
  EXPECT_EQ(tree.predict(&x), 1);
}

TEST(FlatForest, ParityWithRandomForest) {
  std::mt19937_64 rng(0xf03e57ULL);
  const std::size_t features = 5;
  const Dataset d = random_dataset(rng, features, 3, 300);
  ForestParams params;
  params.num_trees = 7;
  params.tree = loose();
  params.feature_fraction = 0.6;
  const RandomForest forest = RandomForest::fit(d, params);
  const FlatForest flat = FlatForest::compile(forest);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat.tree_count(), forest.tree_count());
  EXPECT_GT(flat.bytes(), 0u);
  EXPECT_GT(flat.node_count(), 0u);
  std::uniform_real_distribution<double> value(-12.0, 12.0);
  for (int p = 0; p < 500; ++p) {
    std::vector<double> v(features);
    for (auto& x : v) x = value(rng);
    if (p % 10 == 0) v[static_cast<std::size_t>(p / 10) % features] =
        std::numeric_limits<double>::quiet_NaN();
    ASSERT_EQ(flat.predict(v.data()), forest.predict(v.data())) << "probe " << p;
  }
}

TEST(FlatForest, FeatureMapsAreBakedIntoNodeIndices) {
  // Every flat node's feature index must address the dataset-wide vector:
  // member trees trained on subsets carry remapped indices, so no per-tree
  // gather buffer exists at evaluation time.
  std::mt19937_64 rng(0xbadcafeULL);
  const Dataset d = random_dataset(rng, 6, 2, 200);
  ForestParams params;
  params.num_trees = 5;
  params.tree = loose();
  params.feature_fraction = 0.5;
  const RandomForest forest = RandomForest::fit(d, params);
  const FlatForest flat = FlatForest::compile(forest);
  ASSERT_TRUE(flat.ok());
  for (std::size_t t = 0; t < flat.tree_count(); ++t) {
    const auto& map = forest.feature_maps()[t];
    for (std::size_t n = 0; n < flat.tree(t).node_count(); ++n) {
      const auto& node = flat.tree(t).node(n);
      if (node.feature == FlatTree::kLeafFeature) continue;
      EXPECT_LT(node.feature, 6u);
      bool in_map = false;
      for (std::size_t f : map) in_map |= (f == node.feature);
      EXPECT_TRUE(in_map) << "tree " << t << " node " << n << " uses unmapped feature";
    }
  }
}

TEST(FlatForest, EmptyForestDoesNotCompile) {
  const RandomForest forest;
  const FlatForest flat = FlatForest::compile(forest);
  EXPECT_FALSE(flat.ok());
}
