// apollo-train: the offline model-generation step as a standalone tool
// (the paper's Python package, as a CLI). Reads a training-record file
// produced by a Record-mode run, trains a decision-tree model, reports
// cross-validated accuracy and feature importances, and writes the
// deployable model file — optionally also the generated C++ tuner source.
//
// With --search twostage (or APOLLO_SEARCH=twostage) the trainer does not
// consume every recorded configuration: it treats the records file as an
// exhaustive oracle, runs the model-seeded evolutionary search over each
// launch group, trains only on the selected subset, and reports the measured
// fraction plus the per-group label agreement against the full oracle. See
// docs/tuning-workflow.md ("Search") and docs/search.md.
//
// Usage:
//   apollo_train <records> <output.model>
//       [--parameter policy|chunk_size] [--max-depth N] [--top-features K]
//       [--folds N] [--per-kernel] [--codegen out.cpp] [--quiet]
//       [--search exhaustive|twostage]

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/features.hpp"
#include "core/model_set.hpp"
#include "core/search_options.hpp"
#include "core/search_support.hpp"
#include "core/trainer.hpp"
#include "ml/codegen.hpp"
#include "ml/cross_validation.hpp"
#include "sim/machine.hpp"
#include "telemetry/build_info.hpp"

using namespace apollo;

namespace {

struct Options {
  std::string records_path;
  std::string model_path;
  TunedParameter parameter = TunedParameter::Policy;
  int max_depth = 25;
  int top_features = 0;  // 0 = all
  int folds = 10;
  bool per_kernel = false;
  bool quiet = false;
  std::string codegen_path;
  /// Defaults honour APOLLO_SEARCH / APOLLO_SEARCH_* (hardened in
  /// telemetry::env); --search overrides the mode explicitly.
  SearchOptions search = search_options_from_env();
};

void usage() {
  std::fprintf(stderr,
               "usage: apollo_train <records> <output.model>\n"
               "  [--parameter policy|chunk_size] [--max-depth N] [--top-features K]\n"
               "  [--folds N] [--per-kernel] [--codegen out.cpp] [--quiet]\n"
               "  [--search exhaustive|twostage]\n"
               "\n"
               "--search twostage trains on a model-seeded evolutionary subset of the\n"
               "recorded configurations instead of all of them, and reports label\n"
               "agreement against the full file as the exhaustive oracle. Defaults\n"
               "follow APOLLO_SEARCH / APOLLO_SEARCH_{BUDGET,SEED_K,GENERATIONS}.\n"
               "See docs/tuning-workflow.md (\"Search\") and docs/search.md.\n");
}

bool parse(int argc, char** argv, Options& options) {
  if (argc < 3) return false;
  options.records_path = argv[1];
  options.model_path = argv[2];
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--parameter") {
      const char* value = next();
      if (value == nullptr) return false;
      options.parameter = std::strcmp(value, "chunk_size") == 0 ? TunedParameter::ChunkSize
                                                                : TunedParameter::Policy;
    } else if (arg == "--max-depth") {
      const char* value = next();
      if (value == nullptr) return false;
      options.max_depth = std::atoi(value);
    } else if (arg == "--top-features") {
      const char* value = next();
      if (value == nullptr) return false;
      options.top_features = std::atoi(value);
    } else if (arg == "--folds") {
      const char* value = next();
      if (value == nullptr) return false;
      options.folds = std::atoi(value);
    } else if (arg == "--per-kernel") {
      options.per_kernel = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--codegen") {
      const char* value = next();
      if (value == nullptr) return false;
      options.codegen_path = value;
    } else if (arg == "--search") {
      const char* value = next();
      if (value == nullptr) return false;
      if (std::strcmp(value, "twostage") == 0) {
        options.search.mode = SearchMode::TwoStage;
      } else if (std::strcmp(value, "exhaustive") == 0) {
        options.search.mode = SearchMode::Exhaustive;
      } else {
        std::fprintf(stderr, "unknown --search mode: %s\n", value);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Subset selection against the records file as the exhaustive oracle. One
/// (kernel, shape, deck) launch group = one search: the group's recorded
/// configurations form the measurable table, the analytic machine model
/// supplies the cheap stage-1 ranking, and the evolutionary stage refines
/// within the recorded table. Configurations the search never reaches are
/// dropped from training — exactly what a live two-stage Record run would
/// never have measured.
struct SearchSelection {
  std::vector<perf::SampleRecord> selected;
  std::size_t groups = 0;
  std::size_t agreed = 0;        ///< groups whose best default-chunk policy survives
  std::size_t table_configs = 0; ///< distinct recorded configurations (the oracle)
  std::size_t measured = 0;      ///< ... of which the search selected
  std::size_t misses = 0;        ///< budget spent on combos the file never measured
};

SearchSelection select_searched_subset(const std::vector<perf::SampleRecord>& records,
                                       const SearchOptions& options) {
  using ConfigKey = std::tuple<std::int64_t, std::int64_t, std::int64_t>;  // omp, chunk, team
  struct Group {
    const perf::SampleRecord* exemplar = nullptr;
    std::map<ConfigKey, std::pair<double, std::uint64_t>> table;  // sum, count
    std::vector<std::pair<ConfigKey, const perf::SampleRecord*>> rows;
  };

  const auto config_key = [](const perf::SampleRecord& record) -> ConfigKey {
    const auto policy = record.find(features::kParamPolicy);
    const bool omp = policy != record.end() && policy->second.is_string() &&
                     policy->second.as_string() ==
                         raja::policy_name(raja::PolicyType::seq_segit_omp_parallel_for_exec);
    if (!omp) return {0, 0, 0};
    const auto chunk = record.find(features::kParamChunk);
    const auto team = record.find(features::kParamThreads);
    return {1, chunk != record.end() ? chunk->second.as_int() : 0,
            team != record.end() ? team->second.as_int() : 0};
  };

  std::map<std::string, Group> groups;
  for (const auto& record : records) {
    const auto runtime = record.find(features::kMeasureRuntime);
    if (runtime == record.end() || record.find(features::kParamPolicy) == record.end()) continue;
    Group& group = groups[search_group_key(record)];
    if (group.exemplar == nullptr) group.exemplar = &record;
    const ConfigKey key = config_key(record);
    auto& [sum, count] = group.table[key];
    sum += runtime->second.as_number();
    count += 1;
    group.rows.emplace_back(key, &record);
  }

  const sim::MachineModel machine;
  const unsigned default_team =
      std::thread::hardware_concurrency() > 0 ? std::thread::hardware_concurrency() : 16;
  SearchSelection result;
  for (const auto& [group_key, group] : groups) {
    // Recorded lane values: the space the original sweep drew from.
    std::set<std::int64_t> chunk_set;
    std::set<unsigned> team_set;
    for (const auto& [key, acc] : group.table) {
      (void)acc;
      if (std::get<1>(key) > 0) chunk_set.insert(std::get<1>(key));
      if (std::get<2>(key) > 0) team_set.insert(static_cast<unsigned>(std::get<2>(key)));
    }
    const ml::search::Space space =
        make_variant_space({chunk_set.begin(), chunk_set.end()}, {team_set.begin(), team_set.end()});

    const sim::CostQuery base = query_from_record(*group.exemplar);
    const auto with_variant = [&](const ml::search::Point& point) {
      sim::CostQuery query = base;
      const SearchVariant variant = variant_at(space, point);
      query.policy = variant.policy == raja::PolicyType::seq_segit_seq_exec
                         ? sim::PolicyKind::Sequential
                         : sim::PolicyKind::OpenMP;
      query.chunk = variant.chunk;
      query.threads = variant.team > 0 ? variant.team : default_team;
      return query;
    };
    const auto mean = [&](const ConfigKey& key) {
      const auto it = group.table.find(key);
      if (it == group.table.end() || it->second.second == 0) {
        return std::numeric_limits<double>::infinity();
      }
      return it->second.first / static_cast<double>(it->second.second);
    };
    std::size_t group_misses = 0;
    const auto measure = [&](const ml::search::Point& point) {
      const SearchVariant variant = variant_at(space, point);
      const ConfigKey key{variant.policy == raja::PolicyType::seq_segit_seq_exec ? 0 : 1,
                          variant.chunk, static_cast<std::int64_t>(variant.team)};
      const double seconds = mean(key);
      if (!std::isfinite(seconds)) ++group_misses;  // combo the file never measured
      return seconds;
    };
    const auto cheap = [&](const ml::search::Point& point) {
      return machine.cost_seconds(with_variant(point));
    };
    const auto canonical = [&](const ml::search::Point& point) {
      return canonical_variant_key(space, point);
    };

    const ml::search::SearchConfig config =
        search_engine_config(options, std::hash<std::string>{}(group_key), 1);
    const ml::search::Result searched = ml::search::TwoStageSearch(config).run(
        space, cheap, measure, {{0, 0, 0}, {1, 0, 0}}, canonical);

    std::set<ConfigKey> selected_keys;
    for (const auto& m : searched.measurements) {
      if (!std::isfinite(m.seconds)) continue;
      const SearchVariant variant = variant_at(space, m.point);
      selected_keys.insert({variant.policy == raja::PolicyType::seq_segit_seq_exec ? 0 : 1,
                            variant.chunk, static_cast<std::int64_t>(variant.team)});
    }
    for (const auto& [key, record] : group.rows) {
      if (selected_keys.count(key) > 0) result.selected.push_back(*record);
    }

    // Label agreement: the best default-chunk policy (the trainer's Policy
    // labelling rule) must survive the subset.
    const auto best_policy = [&](const std::set<ConfigKey>* filter) -> int {
      double best = std::numeric_limits<double>::infinity();
      int label = -1;
      for (const auto& [key, acc] : group.table) {
        (void)acc;
        if (std::get<1>(key) != 0 || std::get<2>(key) != 0) continue;  // default chunk/team only
        if (filter != nullptr && filter->count(key) == 0) continue;
        const double seconds = mean(key);
        if (seconds < best) {
          best = seconds;
          label = static_cast<int>(std::get<0>(key));
        }
      }
      return label;
    };
    const int oracle = best_policy(nullptr);
    const int searched_label = best_policy(&selected_keys);
    ++result.groups;
    if (oracle >= 0 && oracle == searched_label) ++result.agreed;
    result.table_configs += group.table.size();
    result.measured += selected_keys.size();
    result.misses += group_misses;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", build_info_string().c_str());
    return 0;
  }
  Options options;
  if (!parse(argc, argv, options)) {
    usage();
    return 2;
  }

  try {
    auto records = perf::read_records_file(options.records_path);
    if (!options.quiet) std::printf("read %zu samples from %s\n", records.size(), options.records_path.c_str());

    if (options.search.mode == SearchMode::TwoStage) {
      SearchSelection selection = select_searched_subset(records, options.search);
      if (!options.quiet) {
        const double fraction =
            selection.table_configs > 0
                ? static_cast<double>(selection.measured) / static_cast<double>(selection.table_configs)
                : 0.0;
        std::printf("two-stage search: selected %zu/%zu recorded configurations across %zu "
                    "launch groups (%.1f%% measured",
                    selection.measured, selection.table_configs, selection.groups,
                    fraction * 100.0);
        if (selection.misses > 0) {
          std::printf(", %zu probes outside the recorded table", selection.misses);
        }
        std::printf(")\n");
        std::printf("label agreement vs exhaustive oracle: %zu/%zu groups (%.1f%%)\n",
                    selection.agreed, selection.groups,
                    selection.groups > 0
                        ? 100.0 * static_cast<double>(selection.agreed) /
                              static_cast<double>(selection.groups)
                        : 0.0);
      }
      if (!selection.selected.empty()) {
        records = std::move(selection.selected);
      } else if (!options.quiet) {
        std::printf("two-stage search selected nothing usable; training on all records\n");
      }
    }

    ml::TreeParams params;
    params.max_depth = options.max_depth;

    if (options.per_kernel) {
      const ModelSet set = ModelSet::train_per_kernel(records, options.parameter, params);
      set.save_file(options.model_path);
      if (!options.quiet) {
        std::printf("trained per-kernel model set: %zu kernel models, %zu total nodes -> %s\n",
                    set.size(), set.total_nodes(), options.model_path.c_str());
      }
      return 0;
    }

    LabeledData data = Trainer::build_labeled_data(records, options.parameter);
    if (options.top_features > 0) {
      // Rank by importance of a model over everything, then re-encode.
      const ml::DecisionTree full = ml::DecisionTree::fit(data.dataset, params);
      const auto importances = full.feature_importances();
      std::vector<std::size_t> order(importances.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return importances[a] > importances[b];
      });
      std::vector<std::string> keep;
      for (int f = 0; f < options.top_features && f < static_cast<int>(order.size()); ++f) {
        keep.push_back(data.dataset.feature_names()[order[static_cast<std::size_t>(f)]]);
      }
      data.dataset = data.dataset.select_features(keep);
    }

    const TunerModel model = Trainer::train(data, options.parameter, params);
    model.save_file(options.model_path);

    if (!options.quiet) {
      std::printf("trained %s model: depth=%d nodes=%zu rows=%zu -> %s\n",
                  tuned_parameter_name(options.parameter), model.tree().depth(),
                  model.tree().node_count(), data.dataset.num_rows(),
                  options.model_path.c_str());
      if (data.dataset.num_rows() >= static_cast<std::size_t>(options.folds)) {
        const auto cv = ml::cross_validate(data.dataset, params, options.folds, 42);
        std::printf("%d-fold cross-validated accuracy: %.1f%% (min %.1f%%, max %.1f%%)\n",
                    options.folds, cv.mean_accuracy * 100, cv.min_accuracy * 100,
                    cv.max_accuracy * 100);
      }
      const auto importances = model.tree().feature_importances();
      std::printf("top feature importances:\n");
      std::vector<std::size_t> order(importances.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return importances[a] > importances[b];
      });
      for (std::size_t f = 0; f < 5 && f < order.size(); ++f) {
        if (importances[order[f]] <= 0) break;
        std::printf("  %-20s %.3f\n", model.tree().feature_names()[order[f]].c_str(),
                    importances[order[f]]);
      }
    }

    if (!options.codegen_path.empty()) {
      std::ofstream out(options.codegen_path);
      if (!out) throw std::runtime_error("cannot open " + options.codegen_path);
      out << ml::generate_cpp(model.tree(), "apollo_generated_model");
      if (!options.quiet) std::printf("generated C++ tuner -> %s\n", options.codegen_path.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "apollo_train: %s\n", error.what());
    return 1;
  }
  return 0;
}
