// apollo-record: run a bundled proxy application in Record mode and stream
// training samples to disk — the "training runs" box of the paper's
// workflow, as a CLI. Supports both protocols:
//
//   sweep (default)     one execution prices every parameter variant per
//                       launch (machine-model timing);
//   forced (--policy)   the paper's one-run-per-value protocol; combine
//                       with repeated invocations and different --policy /
//                       --chunk to build the full corpus. RAJA_POLICY /
//                       RAJA_CHUNK_SIZE environment variables are honoured
//                       the same way (SIII-A).
//
// Usage:
//   apollo_record <lulesh|cleverleaf|ares> <records-out>
//       [--problem NAME] [--size N] [--steps N]
//       [--policy seq|omp] [--chunk N] [--no-chunks]

#include <cstdio>
#include <cstring>
#include <string>

#include "apps/application.hpp"
#include "core/runtime.hpp"
#include "telemetry/build_info.hpp"

using namespace apollo;

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", build_info_string().c_str());
    return 0;
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: apollo_record <lulesh|cleverleaf|ares> <records-out>\n"
                 "  [--problem NAME] [--size N] [--steps N]\n"
                 "  [--policy seq|omp] [--chunk N] [--no-chunks]\n");
    return 2;
  }
  const std::string app_name = argv[1];
  const std::string out_path = argv[2];

  std::unique_ptr<apps::Application> app;
  if (app_name == "lulesh") app = apps::make_lulesh();
  if (app_name == "cleverleaf") app = apps::make_cleverleaf();
  if (app_name == "ares") app = apps::make_ares();
  if (!app) {
    std::fprintf(stderr, "unknown application: %s\n", app_name.c_str());
    return 2;
  }

  std::string problem;
  int size = 0;
  int steps = 5;
  TrainingConfig config;
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--problem") {
      const char* v = next();
      if (v != nullptr) problem = v;
    } else if (arg == "--size") {
      const char* v = next();
      if (v != nullptr) size = std::atoi(v);
    } else if (arg == "--steps") {
      const char* v = next();
      if (v != nullptr) steps = std::atoi(v);
    } else if (arg == "--policy") {
      const char* v = next();
      if (v != nullptr) {
        config.sweep_variants = false;
        config.forced_policy = raja::policy_from_name(v);
      }
    } else if (arg == "--chunk") {
      const char* v = next();
      if (v != nullptr) config.forced_chunk = std::atoll(v);
    } else if (arg == "--no-chunks") {
      config.chunk_values.clear();
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  auto& rt = Runtime::instance();
  rt.set_mode(Mode::Record);
  rt.set_execute_selected(false);
  rt.set_training_config(config);

  try {
    std::size_t total = 0;
    const auto problems = problem.empty() ? app->problems() : std::vector<std::string>{problem};
    const auto sizes = size > 0 ? std::vector<int>{size} : app->training_sizes();
    for (const auto& p : problems) {
      for (int s : sizes) {
        app->run(apps::RunConfig{p, s, steps});
        total += rt.records().size();
        rt.flush_records(out_path);
        std::printf("  %s %s size=%d steps=%d -> appended\n", app->name().c_str(), p.c_str(), s,
                    steps);
      }
    }
    std::printf("%zu samples appended to %s\n", total, out_path.c_str());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "apollo_record: %s\n", error.what());
    return 1;
  }
  return 0;
}
