#pragma once

// Hardware performance-counter profiling with per-kernel×variant attribution.
//
// The telemetry stack observes wall time; this layer observes *why* a variant
// wins. A CounterProvider opens a window around a launch and yields scaled
// event deltas — instructions, cycles, cache misses, branch misses, stalled
// cycles. Two providers:
//
//   PerfEventProvider — grouped perf_event_open(2) counters on the launching
//     thread (pid=0, cpu=-1, user space only). The group is read twice per
//     window (delta read, counters never reset) with
//     PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING, and deltas are scaled by
//     enabled/running to correct for PMU multiplexing. Events that fail to
//     open are dropped from the valid mask rather than failing the group.
//
//   SoftwareProvider — deterministic fallback for containers where
//     perf_event_paranoid blocks the PMU. Thread CPU time
//     (clock_gettime(CLOCK_THREAD_CPUTIME_ID), getrusage(RUSAGE_THREAD) when
//     unavailable) drives synthetic counters at fixed ratios — cycles =
//     cpu-ns (nominal 1 GHz), instructions = cycles (IPC exactly 1), cache
//     misses = cycles/1024, branch misses = cycles/4096, stalled = cycles/8 —
//     so every test asserts the same numbers on every machine.
//
// Cost contract (bench/micro_hwprof_overhead): off (APOLLO_HW_STRIDE=0, the
// default) is one relaxed atomic load + branch per launch; on at the default
// stride (64) stays within 5% of the telemetry-on baseline. Windows ride a
// process-wide stride rotor (the QualityAccountant probe pattern), aggregate
// under one mutex per window (not per launch) into apollo_hw_* series in the
// MetricsRegistry, annotate audit-log decisions, and ship fleet-wide through
// the existing TELEMETRY frame with zero wire changes.
//
// Environment (read by init_from_env, via the hardened telemetry/env parsers):
//   APOLLO_HW_STRIDE=n     profile every nth launch (0 = off, default;
//                          64 recommended when enabling)
//   APOLLO_HW_EVENTS=list  comma list of instructions,cycles,cache-misses,
//                          branch-misses,stalled-cycles (default: all)
//   APOLLO_HW_PROVIDER=p   auto | perf | software (default auto: perf when
//                          the PMU is usable, software otherwise)

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/audit.hpp"

namespace apollo::telemetry::hwprof {

// --- events ------------------------------------------------------------------

enum class Event : std::uint8_t {
  Instructions = 0,
  Cycles,
  CacheMisses,
  BranchMisses,
  StalledCycles,
};
inline constexpr std::size_t kEventCount = 5;
inline constexpr std::uint32_t kAllEventsMask = (1u << kEventCount) - 1;
inline constexpr std::size_t kDefaultOnStride = 64;

/// Canonical spelling used by APOLLO_HW_EVENTS and reports.
[[nodiscard]] const char* event_name(Event event) noexcept;
[[nodiscard]] std::optional<Event> event_from_name(std::string_view name) noexcept;

/// One closed window: scaled counter deltas for the events the provider
/// could actually deliver (valid_mask bit per Event).
struct HwSample {
  std::array<std::uint64_t, kEventCount> counts{};
  std::uint32_t valid_mask = 0;
  double scale = 1.0;  ///< multiplexing correction already applied to counts

  [[nodiscard]] bool has(Event event) const noexcept {
    return (valid_mask >> static_cast<unsigned>(event)) & 1u;
  }
  [[nodiscard]] std::uint64_t count(Event event) const noexcept {
    return counts[static_cast<std::size_t>(event)];
  }
};

// --- providers ---------------------------------------------------------------

/// A per-thread counter source. begin_window/end_window pair on the owning
/// thread; a provider instance is never shared across threads.
class CounterProvider {
public:
  virtual ~CounterProvider() = default;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// Events this provider actually delivers (subset of the requested mask).
  [[nodiscard]] virtual std::uint32_t valid_mask() const noexcept = 0;
  virtual bool begin_window() = 0;
  virtual bool end_window(HwSample& sample) = 0;
};

enum class ProviderKind : std::uint8_t { Auto, Perf, Software };
[[nodiscard]] const char* provider_kind_name(ProviderKind kind) noexcept;

/// One cached probe: can this process open a perf hardware counter on the
/// calling thread? False when perf_event_paranoid (or a missing PMU) says no.
[[nodiscard]] bool perf_events_available();

/// Construct a provider of the given kind for the current thread (Auto
/// resolves through perf_events_available). Exposed for tests and benches;
/// the runtime path uses the thread-cached instance internally.
[[nodiscard]] std::unique_ptr<CounterProvider> make_provider(ProviderKind kind,
                                                             std::uint32_t event_mask);

// --- configuration -----------------------------------------------------------

struct HwConfig {
  std::size_t stride = 0;  ///< profile every nth launch (0 = off)
  std::uint32_t event_mask = kAllEventsMask;
  ProviderKind provider = ProviderKind::Auto;

  /// APOLLO_HW_{STRIDE,EVENTS,PROVIDER} through the hardened env parsers:
  /// garbage values warn on stderr and keep the documented default.
  [[nodiscard]] static HwConfig from_env();
};

/// Parse an APOLLO_HW_EVENTS comma list into a mask. Any unknown token warns
/// and yields the fallback mask (warn-and-default, like telemetry/env).
[[nodiscard]] std::uint32_t parse_event_mask(const std::string& text, std::uint32_t fallback);
/// Parse an APOLLO_HW_PROVIDER value ("auto"/"perf"/"software"); unknown
/// values warn and yield the fallback.
[[nodiscard]] ProviderKind parse_provider(const std::string& text, ProviderKind fallback);

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// The hot-path switch: exactly one relaxed load + branch when off.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Apply a configuration. stride > 0 flips the switch on, publishes the
/// provider-info gauge, and invalidates per-thread provider caches; stride 0
/// switches off.
void configure(const HwConfig& config);
[[nodiscard]] HwConfig config();

/// Read APOLLO_HW_* once and configure (called from telemetry::init_from_env;
/// idempotent).
void init_from_env();

/// Switch off, forget aggregation sums and the env-read latch, and invalidate
/// per-thread providers (tests/benches).
void reset_for_testing();

// --- the runtime hooks -------------------------------------------------------

/// Stride rotor over a process-wide relaxed tick: true on every stride-th
/// call (same budget pattern as the quality probes). Call only when enabled().
[[nodiscard]] bool window_due();

/// Open/close a window on the calling thread's cached provider. begin_window
/// returns false (and arms nothing) when no provider can be built.
bool begin_window();
bool end_window(HwSample& sample);

/// Fold one closed window into the per-kernel×variant aggregate and its
/// apollo_hw_* series (one mutex acquisition; called on the stride only).
void record_window(const std::string& kernel, const std::string& variant,
                   const HwSample& sample, std::uint64_t elements);

/// The provider name the current configuration resolves to ("perf",
/// "software", or "off").
[[nodiscard]] std::string active_provider_name();

// --- offline report (tools/apollo_prof, apollo_replay, tests) ----------------

/// One kernel×variant aggregate reconstructed from apollo_hw_* series.
struct ProfileRow {
  std::string kernel;
  std::string variant;
  std::uint64_t windows = 0;
  std::uint64_t elements = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t stalled_cycles = 0;

  [[nodiscard]] double ipc() const noexcept;
  [[nodiscard]] double cache_miss_rate() const noexcept;   ///< misses / instruction
  [[nodiscard]] double branch_miss_rate() const noexcept;  ///< misses / instruction
  [[nodiscard]] double stall_fraction() const noexcept;    ///< stalled / cycles
  [[nodiscard]] double cycles_per_element() const noexcept;
};

/// Mean counter signature over a set of audited launches.
struct HwSignature {
  std::uint64_t launches = 0;
  double mean_ipc = 0.0;
  double mean_cache_miss_rate = 0.0;
  double mean_branch_miss_rate = 0.0;
  double mean_stall_fraction = 0.0;
};

/// Counter signatures of well-predicted vs mispredicted audited decisions.
/// Ground truth is the audit evidence itself: per (kernel, bucket), the
/// variant with the lowest mean measured seconds across all records; a
/// decision is mispredicted when it executed any other variant.
struct HwCorrelation {
  std::uint64_t audited = 0;  ///< decisions carrying an hw annotation
  HwSignature predicted;
  HwSignature mispredicted;
};
[[nodiscard]] HwCorrelation correlate_hw(const std::vector<AuditRecord>& records);

struct ProfileReport {
  std::string provider;            ///< from apollo_hw_provider_info ("" = unknown)
  std::vector<ProfileRow> rows;    ///< sorted by cycles, heaviest first
  bool has_audit = false;
  HwCorrelation correlation;
};

/// Build the report from a Prometheus text exposition (apollo_hw_* series)
/// plus optional parsed audit records.
[[nodiscard]] ProfileReport build_report(const std::string& metrics_text,
                                         const std::vector<AuditRecord>& audit_records);
/// Render at most `top` rows as an aligned text table / as JSON.
[[nodiscard]] std::string render_report_text(const ProfileReport& report, std::size_t top);
[[nodiscard]] std::string render_report_json(const ProfileReport& report, std::size_t top);

}  // namespace apollo::telemetry::hwprof
