#include "core/features.hpp"

namespace apollo::features {

std::vector<std::string> kernel_feature_names() {
  std::vector<std::string> names = {kFunc,       kFuncSize,    kIndexType, kLoopId,
                                    kNumIndices, kNumSegments, kStride};
  for (std::size_t m = 0; m < instr::kMnemonicCount; ++m) {
    names.emplace_back(instr::mnemonic_name(static_cast<instr::Mnemonic>(m)));
  }
  return names;
}

std::vector<std::string> app_feature_names() {
  return {kTimestep, kProblemSize, kProblemName, kPatchId};
}

void fill_kernel_features(perf::SampleRecord& record, const std::string& loop_id,
                          const std::string& func, const instr::InstructionMix& mix,
                          const raja::IndexSet& iset) {
  fill_kernel_features(record, loop_id, func, mix, iset.getLength(),
                       static_cast<std::int64_t>(iset.getNumSegments()), iset.stride(),
                       iset.type_name());
}

void fill_kernel_features(perf::SampleRecord& record, const std::string& loop_id,
                          const std::string& func, const instr::InstructionMix& mix,
                          std::int64_t num_indices, std::int64_t num_segments,
                          std::int64_t stride, const std::string& index_type) {
  record[kFunc] = func;
  record[kFuncSize] = mix.total();
  record[kIndexType] = index_type;
  record[kLoopId] = loop_id;
  record[kNumIndices] = num_indices;
  record[kNumSegments] = num_segments;
  record[kStride] = stride;
  for (std::size_t m = 0; m < instr::kMnemonicCount; ++m) {
    const auto mnemonic = static_cast<instr::Mnemonic>(m);
    record[instr::mnemonic_name(mnemonic)] = mix.count(mnemonic);
  }
}

}  // namespace apollo::features
