// Unit tests for Dataset, k-fold assignment, and accuracy helpers.

#include <gtest/gtest.h>

#include <set>

#include "ml/dataset.hpp"

using apollo::ml::Dataset;

namespace {

Dataset tiny() {
  Dataset d({"a", "b"}, {"x", "y"});
  d.add_row({1.0, 2.0}, 0);
  d.add_row({3.0, 4.0}, 1);
  d.add_row({5.0, 6.0}, 0);
  return d;
}

}  // namespace

TEST(Dataset, AddRowAndAccessors) {
  const Dataset d = tiny();
  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_EQ(d.row(1), (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(d.label(1), 1);
}

TEST(Dataset, AddRowValidation) {
  Dataset d({"a"}, {"x"});
  EXPECT_THROW(d.add_row({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW(d.add_row({1.0}, 1), std::invalid_argument);
  EXPECT_THROW(d.add_row({1.0}, -1), std::invalid_argument);
}

TEST(Dataset, FeatureIndex) {
  const Dataset d = tiny();
  EXPECT_EQ(d.feature_index("b"), 1u);
  EXPECT_THROW((void)d.feature_index("nope"), std::invalid_argument);
}

TEST(Dataset, SelectFeaturesReordersColumns) {
  const Dataset d = tiny();
  const Dataset s = d.select_features({"b"});
  EXPECT_EQ(s.num_features(), 1u);
  EXPECT_EQ(s.row(0), (std::vector<double>{2.0}));
  EXPECT_EQ(s.label(2), 0);
  const Dataset swapped = d.select_features({"b", "a"});
  EXPECT_EQ(swapped.row(0), (std::vector<double>{2.0, 1.0}));
}

TEST(Dataset, SelectUnknownFeatureThrows) {
  EXPECT_THROW((void)tiny().select_features({"zzz"}), std::invalid_argument);
}

TEST(Dataset, Subset) {
  const Dataset d = tiny();
  const Dataset s = d.subset({2, 0});
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.row(0), (std::vector<double>{5.0, 6.0}));
  EXPECT_EQ(s.row(1), (std::vector<double>{1.0, 2.0}));
  EXPECT_THROW((void)d.subset({99}), std::out_of_range);
}

TEST(KFold, EveryRowAssignedBalanced) {
  const auto folds = apollo::ml::kfold_assignment(103, 10, 42);
  ASSERT_EQ(folds.size(), 103u);
  std::vector<int> counts(10, 0);
  for (int f : folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 10);
    counts[static_cast<std::size_t>(f)]++;
  }
  for (int c : counts) EXPECT_NEAR(c, 10, 1);
}

TEST(KFold, DeterministicPerSeed) {
  EXPECT_EQ(apollo::ml::kfold_assignment(50, 5, 7), apollo::ml::kfold_assignment(50, 5, 7));
  EXPECT_NE(apollo::ml::kfold_assignment(50, 5, 7), apollo::ml::kfold_assignment(50, 5, 8));
}

TEST(KFold, FoldsValidation) {
  EXPECT_THROW((void)apollo::ml::kfold_assignment(10, 1, 0), std::invalid_argument);
}

TEST(Accuracy, Basics) {
  EXPECT_DOUBLE_EQ(apollo::ml::accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(apollo::ml::accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(apollo::ml::accuracy({}, {}), 0.0);
  EXPECT_THROW((void)apollo::ml::accuracy({1}, {1, 2}), std::invalid_argument);
}
