file(REMOVE_RECURSE
  "libapollo_sim.a"
)
