# Empty dependencies file for apollo_bench_harness.
# This may be replaced when dependencies are built.
