#pragma once

// Iteration-space segments, mirroring RAJA's RangeSegment / RangeStrideSegment
// / ListSegment. An IndexSet is an ordered collection of these; kernels are
// written against indices, not storage, so the same body runs under any
// execution policy.

#include <cstdint>
#include <utility>
#include <vector>

namespace raja {

using Index = std::int64_t;

/// Contiguous half-open range [begin, end).
struct RangeSegment {
  Index begin = 0;
  Index end = 0;

  [[nodiscard]] Index size() const noexcept { return end > begin ? end - begin : 0; }

  template <typename Body>
  void for_each(Body&& body) const {
    for (Index i = begin; i < end; ++i) body(i);
  }
};

/// Strided half-open range: begin, begin+stride, ... (< end), stride >= 1.
struct StridedSegment {
  Index begin = 0;
  Index end = 0;
  Index stride = 1;

  [[nodiscard]] Index size() const noexcept {
    if (end <= begin || stride <= 0) return 0;
    return (end - begin + stride - 1) / stride;
  }

  template <typename Body>
  void for_each(Body&& body) const {
    for (Index i = begin; i < end; i += stride) body(i);
  }
};

/// Arbitrary index list (e.g. the cells of one material region).
struct ListSegment {
  std::vector<Index> indices;

  ListSegment() = default;
  explicit ListSegment(std::vector<Index> idx) : indices(std::move(idx)) {}

  [[nodiscard]] Index size() const noexcept { return static_cast<Index>(indices.size()); }

  template <typename Body>
  void for_each(Body&& body) const {
    for (Index i : indices) body(i);
  }
};

}  // namespace raja
