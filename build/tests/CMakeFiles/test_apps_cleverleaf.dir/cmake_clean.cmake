file(REMOVE_RECURSE
  "CMakeFiles/test_apps_cleverleaf.dir/test_apps_cleverleaf.cpp.o"
  "CMakeFiles/test_apps_cleverleaf.dir/test_apps_cleverleaf.cpp.o.d"
  "test_apps_cleverleaf"
  "test_apps_cleverleaf.pdb"
  "test_apps_cleverleaf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_cleverleaf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
