file(REMOVE_RECURSE
  "CMakeFiles/table3_cross_application.dir/table3_cross_application.cpp.o"
  "CMakeFiles/table3_cross_application.dir/table3_cross_application.cpp.o.d"
  "table3_cross_application"
  "table3_cross_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cross_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
