// Unit tests for the trainer pipeline: grouping, argmin labeling, the
// runtime tables behind the oracle/static comparisons, and model training.

#include <gtest/gtest.h>

#include "core/features.hpp"
#include "core/trainer.hpp"

using apollo::LabeledData;
using apollo::Trainer;
using apollo::TunedParameter;
using apollo::perf::SampleRecord;

namespace {

SampleRecord make_record(std::int64_t num_indices, const std::string& policy, std::int64_t chunk,
                         double runtime, const std::string& loop_id = "k1") {
  SampleRecord r;
  r["loop_id"] = loop_id;
  r["num_indices"] = num_indices;
  r["param:policy"] = policy;
  r["param:chunk_size"] = chunk;
  r["measure:runtime"] = runtime;
  return r;
}

/// Small launches favour seq, large favour omp; two launches each, swept.
std::vector<SampleRecord> sweep_records() {
  std::vector<SampleRecord> records;
  for (int rep = 0; rep < 2; ++rep) {
    records.push_back(make_record(100, "seq", 0, 1e-6));
    records.push_back(make_record(100, "omp", 0, 1e-5));
    records.push_back(make_record(100000, "seq", 0, 1e-3));
    records.push_back(make_record(100000, "omp", 0, 1e-4));
  }
  return records;
}

}  // namespace

TEST(Trainer, GroupsIdenticalFeatureVectors) {
  const LabeledData data = Trainer::build_labeled_data(sweep_records(), TunedParameter::Policy);
  EXPECT_EQ(data.dataset.num_rows(), 2u);  // two unique feature vectors
  EXPECT_EQ(data.row_counts, (std::vector<std::int64_t>{2, 2}));
}

TEST(Trainer, LabelsAreArgminRuntime) {
  const LabeledData data = Trainer::build_labeled_data(sweep_records(), TunedParameter::Policy);
  const auto& labels = data.dataset.label_names();
  const std::size_t ni = data.dataset.feature_index("num_indices");
  for (std::size_t r = 0; r < data.dataset.num_rows(); ++r) {
    const std::string expected = data.dataset.row(r)[ni] < 1000 ? "seq" : "omp";
    EXPECT_EQ(labels[static_cast<std::size_t>(data.dataset.label(r))], expected);
  }
}

TEST(Trainer, RuntimeTableHoldsMeansPerLabel) {
  const LabeledData data = Trainer::build_labeled_data(sweep_records(), TunedParameter::Policy);
  for (std::size_t r = 0; r < data.runtimes.size(); ++r) {
    EXPECT_EQ(data.runtimes[r].size(), 2u);  // both labels measured
  }
}

TEST(Trainer, OracleBeatsOrTiesAnyStatic) {
  const LabeledData data = Trainer::build_labeled_data(sweep_records(), TunedParameter::Policy);
  const double oracle = data.total_runtime_oracle();
  for (int label = 0; label < 2; ++label) {
    EXPECT_LE(oracle, data.total_runtime_static(label) + 1e-15);
  }
  // Static "omp" costs the small kernel's penalty on every launch.
  const auto& labels = data.dataset.label_names();
  const int omp = static_cast<int>(
      std::find(labels.begin(), labels.end(), "omp") - labels.begin());
  EXPECT_NEAR(data.total_runtime_static(omp), 2 * (1e-5 + 1e-4), 1e-12);
  EXPECT_NEAR(oracle, 2 * (1e-6 + 1e-4), 1e-12);
}

TEST(Trainer, PredictedRuntimeUsesPerRowTable) {
  const LabeledData data = Trainer::build_labeled_data(sweep_records(), TunedParameter::Policy);
  std::vector<int> oracle_predictions;
  for (std::size_t r = 0; r < data.dataset.num_rows(); ++r) {
    oracle_predictions.push_back(data.dataset.label(r));
  }
  EXPECT_NEAR(data.total_runtime_predicted(oracle_predictions), data.total_runtime_oracle(),
              1e-15);
  EXPECT_THROW((void)data.total_runtime_predicted({0}), std::invalid_argument);
}

TEST(Trainer, MeanRuntimePerGroupAveragesRepeats) {
  std::vector<SampleRecord> records;
  records.push_back(make_record(50, "seq", 0, 1.0));
  records.push_back(make_record(50, "seq", 0, 3.0));
  records.push_back(make_record(50, "omp", 0, 10.0));
  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Policy);
  ASSERT_EQ(data.dataset.num_rows(), 1u);
  const auto& labels = data.dataset.label_names();
  const int seq = static_cast<int>(
      std::find(labels.begin(), labels.end(), "seq") - labels.begin());
  EXPECT_DOUBLE_EQ(data.runtimes[0].at(seq), 2.0);  // mean of 1 and 3
  EXPECT_EQ(data.row_counts[0], 2);                 // two launches of the seq variant
}

TEST(Trainer, ChunkDataUsesOnlyOmpSamples) {
  std::vector<SampleRecord> records;
  records.push_back(make_record(1000, "seq", 0, 1e-5));
  records.push_back(make_record(1000, "omp", 64, 2e-5));
  records.push_back(make_record(1000, "omp", 128, 1e-5));
  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::ChunkSize);
  EXPECT_EQ(data.dataset.num_rows(), 1u);
  EXPECT_EQ(data.dataset.label_names(), (std::vector<std::string>{"64", "128"}));
  EXPECT_EQ(data.dataset.label_names()[static_cast<std::size_t>(data.dataset.label(0))], "128");
}

TEST(Trainer, ChunkLabelsSortedNumerically) {
  std::vector<SampleRecord> records;
  for (std::int64_t chunk : {1024, 2, 128, 16}) {
    records.push_back(make_record(1000, "omp", chunk, 1e-5 / static_cast<double>(chunk)));
  }
  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::ChunkSize);
  EXPECT_EQ(data.dataset.label_names(),
            (std::vector<std::string>{"2", "16", "128", "1024"}));
}

TEST(Trainer, CategoricalFeaturesGetDictionaries) {
  std::vector<SampleRecord> records = sweep_records();
  for (auto& r : records) r["problem_name"] = "sedov";
  records[0]["problem_name"] = "sod";
  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Policy);
  ASSERT_TRUE(data.dictionaries.count("problem_name"));
  EXPECT_EQ(data.dictionaries.at("problem_name"),
            (std::vector<std::string>{"sedov", "sod"}));
  EXPECT_TRUE(data.dictionaries.count("loop_id"));
  EXPECT_FALSE(data.dictionaries.count("num_indices"));
}

TEST(Trainer, MissingFeatureEncodedMinusOne) {
  std::vector<SampleRecord> records = sweep_records();
  records[0]["extra"] = 5;  // only present on one record
  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Policy);
  const std::size_t extra = data.dataset.feature_index("extra");
  bool saw_minus_one = false, saw_five = false;
  for (std::size_t r = 0; r < data.dataset.num_rows(); ++r) {
    if (data.dataset.row(r)[extra] == -1.0) saw_minus_one = true;
    if (data.dataset.row(r)[extra] == 5.0) saw_five = true;
  }
  EXPECT_TRUE(saw_minus_one);
  EXPECT_TRUE(saw_five);
}

TEST(Trainer, NoUsableRecordsThrows) {
  EXPECT_THROW((void)Trainer::build_labeled_data({}, TunedParameter::Policy),
               std::invalid_argument);
  std::vector<SampleRecord> seq_only;
  seq_only.push_back(make_record(10, "seq", 0, 1.0));
  EXPECT_THROW((void)Trainer::build_labeled_data(seq_only, TunedParameter::ChunkSize),
               std::invalid_argument);
}

TEST(Trainer, TrainedModelPredictsArgmin) {
  // The grouped dataset has only two rows; relax the split minimums.
  apollo::ml::TreeParams params;
  params.min_samples_leaf = 1;
  params.min_samples_split = 2;
  const apollo::TunerModel model =
      Trainer::train(sweep_records(), TunedParameter::Policy, params);
  EXPECT_EQ(model.parameter(), TunedParameter::Policy);
  const auto resolve_small = [](const std::string& name) -> std::optional<apollo::perf::Value> {
    if (name == "num_indices") return apollo::perf::Value(std::int64_t{100});
    if (name == "loop_id") return apollo::perf::Value("k1");
    return std::nullopt;
  };
  const auto resolve_large = [](const std::string& name) -> std::optional<apollo::perf::Value> {
    if (name == "num_indices") return apollo::perf::Value(std::int64_t{100000});
    if (name == "loop_id") return apollo::perf::Value("k1");
    return std::nullopt;
  };
  EXPECT_EQ(model.label_name(model.predict(resolve_small)), "seq");
  EXPECT_EQ(model.label_name(model.predict(resolve_large)), "omp");
}
