# Empty compiler generated dependencies file for fig04_model_codegen.
# This may be replaced when dependencies are built.
