#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace apollo::sim {

double ClusterModel::step_seconds(const std::vector<double>& rank_compute_seconds,
                                  const std::vector<std::size_t>& rank_patch_counts) const {
  if (rank_compute_seconds.empty()) return 0.0;
  if (rank_patch_counts.size() != rank_compute_seconds.size()) {
    throw std::invalid_argument("ClusterModel::step_seconds: rank vector size mismatch");
  }
  double critical = 0.0;
  for (std::size_t r = 0; r < rank_compute_seconds.size(); ++r) {
    const double halo = static_cast<double>(rank_patch_counts[r]) * config_.halo_per_patch_us * 1e-6;
    critical = std::max(critical, rank_compute_seconds[r] + halo);
  }
  const double ranks = static_cast<double>(rank_compute_seconds.size());
  const double collective =
      (config_.collective_base_us + config_.collective_per_hop_us * std::log2(std::max(ranks, 1.0))) *
      1e-6;
  return critical + collective;
}

std::vector<unsigned> ClusterModel::decompose(const std::vector<double>& weights, unsigned ranks) {
  if (ranks == 0) throw std::invalid_argument("ClusterModel::decompose: ranks must be > 0");
  std::vector<unsigned> assignment(weights.size(), 0);
  if (ranks == 1) return assignment;

  // Longest-processing-time: sort items by descending weight, always give the
  // next item to the currently lightest rank.
  std::vector<std::size_t> order(weights.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return weights[a] > weights[b]; });

  using Load = std::pair<double, unsigned>;  // (current load, rank)
  std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
  for (unsigned r = 0; r < ranks; ++r) heap.emplace(0.0, r);

  for (std::size_t item : order) {
    auto [load, rank] = heap.top();
    heap.pop();
    assignment[item] = rank;
    heap.emplace(load + weights[item], rank);
  }
  return assignment;
}

}  // namespace apollo::sim
