// ext_search_efficiency: budgeted two-stage search vs the exhaustive sweep
// on an enlarged (policy x chunk x team) variant space (extension).
//
// The paper's training protocol measures every variant of every kernel
// launch. That is affordable for the paper's (policy x chunk) space, but the
// cross product with explicit team sizes is an order of magnitude larger and
// exhaustive coverage stops scaling. The two-stage engine (src/ml/search/)
// ranks the space with the analytic machine model, seeds a diverse top-K
// population, and refines it evolutionarily against measured samples under a
// hard budget.
//
// Phase 1 (label quality): the ARES Sedov and Jet decks run in Record mode
// over the enlarged space, once exhaustively (the oracle) and once with
// APOLLO_SEARCH=twostage semantics. Per launch group the policy label a
// trainer would derive from the searched subset is scored against the
// oracle's label; the searched-vs-skipped counters give the measured
// fraction. Acceptance: >= 95% label agreement while measuring <= 10% of the
// configuration space.
//
// Phase 2 (adapt convergence): the workload-shift scenario from
// ext_online_adapt runs twice on the enlarged space — baseline adaptation
// (no search augmentation) and adaptation with the Retrainer's budgeted
// two-stage augmentation. The augmented pass must still recover to within
// 10% of the oracle with zero failed retrains and without blowing up the
// pass wall time, while covering the enlarged space at the budgeted
// fraction per retrain.
//
// Emits BENCH_search.json (--out) with the series + pass verdict for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "core/features.hpp"
#include "core/runtime.hpp"
#include "core/search_options.hpp"
#include "core/trainer.hpp"
#include "telemetry/telemetry.hpp"

using namespace apollo;

namespace {

// --- enlarged variant space --------------------------------------------------

const std::vector<unsigned>& team_values() {
  static const std::vector<unsigned> teams{2, 4, 8, 16, 32, 48, 64, 96};
  return teams;
}

TrainingConfig enlarged_training_config() {
  TrainingConfig config;  // default chunk_values: 11 entries
  config.thread_values = team_values();
  return config;
}

std::size_t enlarged_space_size() {
  const TrainingConfig config = enlarged_training_config();
  // make_variant_space lanes: policy {seq, omp} x chunk {default + values}
  // x team {default + values}.
  return 2 * (1 + config.chunk_values.size()) * (1 + config.thread_values.size());
}

SearchOptions twostage_options() {
  SearchOptions options;
  options.mode = SearchMode::TwoStage;
  options.budget = 20;  // 20/216 = 9.3% of the enlarged space
  options.seed_k = 8;
  options.generations = 4;
  return options;
}

// --- phase 1: label quality on the ARES decks --------------------------------

/// Trainer-rule policy label per launch group: among rows at the default
/// chunk with no explicit team, the policy with the lowest mean runtime.
struct GroupStats {
  double seq_sum = 0.0;
  std::size_t seq_count = 0;
  double omp_sum = 0.0;
  std::size_t omp_count = 0;

  [[nodiscard]] bool complete() const { return seq_count > 0 && omp_count > 0; }
  [[nodiscard]] std::string label() const {
    return seq_sum / static_cast<double>(seq_count) <=
                   omp_sum / static_cast<double>(omp_count)
               ? "seq"
               : "omp";
  }
};

std::map<std::string, GroupStats> group_labels(const std::vector<perf::SampleRecord>& records) {
  std::map<std::string, GroupStats> groups;
  for (const auto& record : records) {
    const auto policy = record.find(features::kParamPolicy);
    const auto chunk = record.find(features::kParamChunk);
    const auto runtime = record.find(features::kMeasureRuntime);
    if (policy == record.end() || runtime == record.end()) continue;
    if (chunk != record.end() && chunk->second.as_int() != 0) continue;
    if (record.find(features::kParamThreads) != record.end()) continue;  // explicit team
    const auto loop = record.find(features::kLoopId);
    const auto indices = record.find(features::kNumIndices);
    if (loop == record.end() || indices == record.end()) continue;
    const std::string key =
        loop->second.as_string() + "|" + std::to_string(indices->second.as_int());
    GroupStats& stats = groups[key];
    if (policy->second.as_string() == "seq") {
      stats.seq_sum += runtime->second.as_real();
      stats.seq_count += 1;
    } else {
      stats.omp_sum += runtime->second.as_real();
      stats.omp_count += 1;
    }
  }
  return groups;
}

std::vector<perf::SampleRecord> record_deck(apps::Application& app, const std::string& deck,
                                            int size, const SearchOptions& options) {
  auto& rt = Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Record);
  rt.set_training_config(enlarged_training_config());
  rt.set_search_options(options);
  app.run(apps::RunConfig{deck, size, /*steps=*/4});
  std::vector<perf::SampleRecord> records = rt.records();
  rt.reset();
  return records;
}

struct DeckResult {
  std::string deck;
  std::size_t groups = 0;          ///< launch groups with both oracle anchors
  std::size_t agreed = 0;          ///< groups where the searched label matches
  std::size_t oracle_records = 0;  ///< rows the exhaustive sweep produced
  std::size_t search_records = 0;  ///< rows the budgeted search produced
  std::uint64_t measured = 0;      ///< searched pass: configurations measured
  std::uint64_t skipped = 0;       ///< searched pass: configurations skipped

  [[nodiscard]] double accuracy() const {
    return groups > 0 ? static_cast<double>(agreed) / static_cast<double>(groups) : 0.0;
  }
};

DeckResult score_deck(apps::Application& app, const std::string& deck, int size) {
  DeckResult result;
  result.deck = deck;
  SearchOptions exhaustive;  // defaults
  const auto oracle_records = record_deck(app, deck, size, exhaustive);

  // Counter deltas around the searched pass only, so the exhaustive oracle's
  // own measured count does not dilute the fraction.
  telemetry::set_enabled(true);
  auto& registry = telemetry::MetricsRegistry::instance();
  const auto measured0 = registry.counter("apollo_search_measured_total", "").value();
  const auto skipped0 = registry.counter("apollo_search_skipped_total", "").value();
  const auto search_records = record_deck(app, deck, size, twostage_options());
  result.measured = registry.counter("apollo_search_measured_total", "").value() - measured0;
  result.skipped = registry.counter("apollo_search_skipped_total", "").value() - skipped0;
  telemetry::set_enabled(false);

  result.oracle_records = oracle_records.size();
  result.search_records = search_records.size();

  const auto oracle = group_labels(oracle_records);
  const auto searched = group_labels(search_records);
  for (const auto& [key, stats] : oracle) {
    if (!stats.complete()) continue;
    const auto hit = searched.find(key);
    // The search anchors {seq, omp at defaults} guarantee the searched
    // subset can label every group the oracle can.
    if (hit == searched.end() || !hit->second.complete()) continue;
    result.groups += 1;
    if (stats.label() == hit->second.label()) result.agreed += 1;
  }
  return result;
}

// --- phase 2: adapt-mode convergence on the enlarged space --------------------

const KernelHandle& stream_kernel() {
  static const KernelHandle k{"search:stream", "StreamKernel",
                              instr::MixBuilder{}.fp(2).load(2).store(1).build(), 24};
  return k;
}

constexpr std::size_t kPreLaunches = 150;
constexpr std::size_t kPostLaunches = 450;

std::int64_t size_at(std::size_t launch) {
  static const std::int64_t small[] = {2000, 4000, 8000};
  static const std::int64_t large[] = {150000, 250000};
  return launch < kPreLaunches ? small[launch % 3] : large[launch % 2];
}

double oracle_cost(std::int64_t size) {
  const auto& rt = Runtime::instance();
  sim::CostQuery query;
  query.num_indices = size;
  query.num_segments = 1;
  query.mix = stream_kernel().mix();
  query.bytes_per_iteration = stream_kernel().bytes_per_iteration();
  query.threads = rt.machine().config().cores;
  query.kernel_seed = std::hash<std::string>{}(stream_kernel().loop_id());
  query.policy = sim::PolicyKind::Sequential;
  const double seq = rt.machine().cost_seconds(query);
  query.policy = sim::PolicyKind::OpenMP;
  return std::min(seq, rt.machine().cost_seconds(query));
}

TunerModel train_offline_model() {
  auto& rt = Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Record);
  TrainingConfig training;
  training.chunk_values.clear();
  rt.set_training_config(training);
  for (std::int64_t size : {1000, 2000, 4000, 8000, 12000}) {
    for (int step = 0; step < 8; ++step) {
      apollo::forall(stream_kernel(), raja::IndexSet::range(0, size), [](raja::Index) {});
    }
  }
  TunerModel model = Trainer::train(rt.records(), TunedParameter::Policy);
  rt.reset();
  return model;
}

struct AdaptResult {
  std::size_t swap_launch = 0;
  double steady_ratio = 0.0;
  double wall_seconds = 0.0;
  online::OnlineTuner::Status status{};
};

AdaptResult run_adapt_pass(const TunerModel& offline_model, const SearchOptions& options) {
  auto& rt = Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);
  rt.set_training_config(enlarged_training_config());
  rt.set_search_options(options);

  online::OnlineConfig config;
  config.sample_stride = 4;
  config.min_retrain_samples = 32;
  config.post_drift_samples = 16;
  config.drift.window = 32;
  config.drift.min_samples = 8;
  config.drift.cooldown = 48;
  config.explorer.epsilon = 0.05;
  config.explorer.boosted_epsilon = 0.40;
  rt.configure_online(config);
  rt.set_policy_model(offline_model);

  AdaptResult result;
  std::vector<double> cost;
  cost.reserve(kPreLaunches + kPostLaunches);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t launch = 0; launch < kPreLaunches + kPostLaunches; ++launch) {
    const double before = rt.stats().total_seconds;
    apollo::forall(stream_kernel(), raja::IndexSet::range(0, size_at(launch)), [](raja::Index) {});
    cost.push_back(rt.stats().total_seconds - before);
    if (rt.online().status().retrain_in_flight) rt.online().wait_retrain_idle();
    if (result.swap_launch == 0 && rt.online().status().model_version > 0) {
      result.swap_launch = launch + 1;
    }
  }
  rt.online().wait_retrain_idle();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  result.status = rt.online().status();

  const std::size_t total = kPreLaunches + kPostLaunches;
  const std::size_t tail_begin = std::max(result.swap_launch + 30, total - 200);
  double oracle_sum = 0.0;
  double cost_sum = 0.0;
  for (std::size_t launch = tail_begin; launch < total; ++launch) {
    oracle_sum += oracle_cost(size_at(launch));
    cost_sum += cost[launch];
  }
  result.steady_ratio = oracle_sum > 0.0 ? cost_sum / oracle_sum : 0.0;
  rt.reset();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_search.json";
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--out" && a + 1 < argc) {
      out_path = argv[++a];
    } else {
      std::fprintf(stderr, "usage: ext_search_efficiency [--out FILE]\n");
      return 2;
    }
  }

  bench::print_heading("Two-stage search efficiency on the enlarged variant space",
                       "extension of SIII.B (training data collection cost)");
  const std::size_t space = enlarged_space_size();
  const SearchOptions budgeted = twostage_options();
  std::printf("variant space: policy x chunk x team = %zu points; search budget %zu "
              "(%.1f%% of space)\n\n",
              space, budgeted.budget,
              100.0 * static_cast<double>(budgeted.budget) / static_cast<double>(space));

  // --- phase 1: label quality ------------------------------------------------
  const auto ares = apps::make_ares();
  std::vector<DeckResult> decks;
  std::uint64_t measured_total = 0;
  std::uint64_t skipped_total = 0;
  for (const std::string deck : {"sedov", "jet"}) {
    decks.push_back(score_deck(*ares, deck, 64));
    const DeckResult& r = decks.back();
    measured_total += r.measured;
    skipped_total += r.skipped;
    std::printf("ares/%-7s %4zu groups: label agreement %zu/%zu (%.1f%%), "
                "records %zu searched vs %zu exhaustive\n",
                r.deck.c_str(), r.groups, r.agreed, r.groups, r.accuracy() * 100.0,
                r.search_records, r.oracle_records);
  }

  const double measured_fraction =
      measured_total + skipped_total > 0
          ? static_cast<double>(measured_total) /
                static_cast<double>(measured_total + skipped_total)
          : 1.0;

  std::size_t total_groups = 0;
  std::size_t total_agreed = 0;
  for (const auto& deck : decks) {
    total_groups += deck.groups;
    total_agreed += deck.agreed;
  }
  const double accuracy =
      total_groups > 0 ? static_cast<double>(total_agreed) / static_cast<double>(total_groups)
                       : 0.0;
  std::printf("\noverall: label accuracy %.1f%% across %zu groups, measured fraction %.1f%% "
              "of the %zu-point space\n",
              accuracy * 100.0, total_groups, measured_fraction * 100.0, space);

  // --- phase 2: adapt convergence --------------------------------------------
  std::printf("\nadapt-mode recovery after a workload shift (enlarged space):\n");
  const TunerModel offline_model = train_offline_model();
  SearchOptions exhaustive;
  const AdaptResult baseline = run_adapt_pass(offline_model, exhaustive);
  const AdaptResult augmented = run_adapt_pass(offline_model, budgeted);
  std::printf("  baseline (no augmentation): swap at launch %zu, steady %.2fx oracle, "
              "%llu retrains (%llu failed), %.2f s wall\n",
              baseline.swap_launch, baseline.steady_ratio,
              static_cast<unsigned long long>(baseline.status.retrains_completed),
              static_cast<unsigned long long>(baseline.status.retrains_failed),
              baseline.wall_seconds);
  std::printf("  two-stage augmentation:     swap at launch %zu, steady %.2fx oracle, "
              "%llu retrains (%llu failed), %.2f s wall\n",
              augmented.swap_launch, augmented.steady_ratio,
              static_cast<unsigned long long>(augmented.status.retrains_completed),
              static_cast<unsigned long long>(augmented.status.retrains_failed),
              augmented.wall_seconds);

  // --- verdict ----------------------------------------------------------------
  const bool pass_accuracy = accuracy >= 0.95 && total_groups > 0;
  const bool pass_fraction = measured_fraction <= 0.10;
  const bool pass_adapt = augmented.swap_launch > 0 && augmented.steady_ratio <= 1.10 &&
                          augmented.status.retrains_failed == 0 &&
                          augmented.wall_seconds <= std::max(baseline.wall_seconds * 1.5, 1.0);
  const bool pass = pass_accuracy && pass_fraction && pass_adapt;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"space_size\": " << space << ",\n"
      << "  \"budget\": " << budgeted.budget << ",\n"
      << "  \"decks\": [\n";
  for (std::size_t d = 0; d < decks.size(); ++d) {
    out << "    {\"deck\": \"" << decks[d].deck << "\", \"groups\": " << decks[d].groups
        << ", \"agreed\": " << decks[d].agreed << ", \"label_accuracy\": " << decks[d].accuracy()
        << ", \"searched_records\": " << decks[d].search_records
        << ", \"oracle_records\": " << decks[d].oracle_records << "}"
        << (d + 1 < decks.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"label_accuracy\": " << accuracy << ",\n"
      << "  \"measured_fraction\": " << measured_fraction << ",\n"
      << "  \"adapt_baseline\": {\"swap_launch\": " << baseline.swap_launch
      << ", \"steady_ratio\": " << baseline.steady_ratio
      << ", \"retrains\": " << baseline.status.retrains_completed
      << ", \"retrains_failed\": " << baseline.status.retrains_failed
      << ", \"wall_seconds\": " << baseline.wall_seconds << "},\n"
      << "  \"adapt_twostage\": {\"swap_launch\": " << augmented.swap_launch
      << ", \"steady_ratio\": " << augmented.steady_ratio
      << ", \"retrains\": " << augmented.status.retrains_completed
      << ", \"retrains_failed\": " << augmented.status.retrains_failed
      << ", \"wall_seconds\": " << augmented.wall_seconds << "},\n"
      << "  \"pass_accuracy\": " << (pass_accuracy ? "true" : "false") << ",\n"
      << "  \"pass_fraction\": " << (pass_fraction ? "true" : "false") << ",\n"
      << "  \"pass_adapt\": " << (pass_adapt ? "true" : "false") << ",\n"
      << "  \"pass\": " << (pass ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf("\n%s: label accuracy %.1f%% (>= 95%%), measured fraction %.1f%% (<= 10%%), "
              "augmented adapt %s\n",
              pass ? "PASS" : "FAIL", accuracy * 100.0, measured_fraction * 100.0,
              pass_adapt ? "recovered" : "did NOT recover");
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
