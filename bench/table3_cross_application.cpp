// Table III: cross-application prediction accuracy. Train an execution-
// policy model on one (application, input problem) combination and test it
// on every other. Paper: LULESH-trained models transfer well to CleverLeaf
// and ARES (broad num_indices coverage); the reverse does not hold.

#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "core/features.hpp"

using namespace apollo;

namespace {

struct Combo {
  std::string app;
  std::string problem;
  std::string label;
};

/// Group raw records by feature vector; keep the winning policy and one
/// representative record per group (for resolver-based evaluation).
struct TestGroup {
  std::string truth;
  perf::SampleRecord representative;
};

std::vector<TestGroup> group_records(const std::vector<perf::SampleRecord>& records) {
  struct Accumulator {
    std::map<std::string, double> best;  // policy -> min runtime
    perf::SampleRecord representative;
  };
  std::map<std::string, Accumulator> groups;
  for (const auto& record : records) {
    std::string key;
    for (const auto& [k, v] : record) {
      if (!features::is_meta_key(k)) key += k + "\x1f" + v.encode() + "\x1e";
    }
    auto& acc = groups[key];
    if (acc.representative.empty()) acc.representative = record;
    const std::string policy = record.at(features::kParamPolicy).as_string();
    const double runtime = record.at(features::kMeasureRuntime).as_number();
    auto it = acc.best.find(policy);
    if (it == acc.best.end() || runtime < it->second) acc.best[policy] = runtime;
  }
  std::vector<TestGroup> out;
  out.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    std::string truth;
    double best = 1e300;
    for (const auto& [policy, runtime] : acc.best) {
      if (runtime < best) {
        best = runtime;
        truth = policy;
      }
    }
    out.push_back(TestGroup{truth, std::move(acc.representative)});
  }
  return out;
}

double evaluate(const TunerModel& model, const std::vector<TestGroup>& groups) {
  std::size_t hits = 0;
  for (const auto& group : groups) {
    const auto& record = group.representative;
    const TunerModel::Resolver resolve =
        [&](const std::string& name) -> std::optional<perf::Value> {
      auto it = record.find(name);
      if (it == record.end()) return std::nullopt;
      return it->second;
    };
    if (model.label_name(model.predict(resolve)) == group.truth) ++hits;
  }
  return groups.empty() ? 0.0 : static_cast<double>(hits) / static_cast<double>(groups.size());
}

}  // namespace

int main() {
  bench::print_heading("Cross-application prediction accuracy (train rows x test columns)",
                       "Table III");

  const std::vector<Combo> combos = {
      {"LULESH", "sedov", "L-Sedov"},   {"CleverLeaf", "sod", "C-Sod"},
      {"CleverLeaf", "sedov", "C-Sedov"}, {"CleverLeaf", "triple_point", "C-TriPt"},
      {"ARES", "sedov", "A-Sedov"},     {"ARES", "jet", "A-Jet"},
      {"ARES", "hotspot", "A-Hotspot"},
  };

  // Record each combo once (at every training size of its app).
  std::map<std::string, std::vector<perf::SampleRecord>> corpora;
  auto all_apps = apps::make_all_applications();
  for (const auto& combo : combos) {
    for (auto& app : all_apps) {
      if (app->name() != combo.app) continue;
      Runtime::instance().reset();
      std::vector<perf::SampleRecord> records;
      for (int size : app->training_sizes()) {
        auto part = bench::record_problem(*app, combo.problem, size, 4, /*with_chunks=*/false);
        records.insert(records.end(), part.begin(), part.end());
      }
      corpora[combo.label] = std::move(records);
    }
  }

  // Pre-group every test corpus and pre-train every row model.
  std::map<std::string, std::vector<TestGroup>> grouped;
  std::map<std::string, TunerModel> models;
  for (const auto& combo : combos) {
    grouped[combo.label] = group_records(corpora[combo.label]);
    models.emplace(combo.label,
                   Trainer::train(corpora[combo.label], TunedParameter::Policy));
  }

  std::vector<std::string> header{"train\\test"};
  for (const auto& combo : combos) header.push_back(combo.label);
  std::vector<int> widths(combos.size() + 1, 11);
  widths[0] = 12;
  bench::print_row(header, widths);

  for (const auto& train : combos) {
    std::vector<std::string> cells{train.label};
    for (const auto& test : combos) {
      cells.push_back(bench::fmt(evaluate(models.at(train.label), grouped[test.label]), 2));
    }
    bench::print_row(cells, widths);
  }

  std::printf("\nPaper shape: high diagonal; LULESH-trained models transfer to CleverLeaf and\n"
              "ARES, while CleverLeaf/ARES-trained models do poorly on LULESH (narrower\n"
              "iteration-count coverage in their training data).\n");
  return 0;
}
