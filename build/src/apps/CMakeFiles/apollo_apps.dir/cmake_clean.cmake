file(REMOVE_RECURSE
  "CMakeFiles/apollo_apps.dir/ares/ares.cpp.o"
  "CMakeFiles/apollo_apps.dir/ares/ares.cpp.o.d"
  "CMakeFiles/apollo_apps.dir/cleverleaf/amr.cpp.o"
  "CMakeFiles/apollo_apps.dir/cleverleaf/amr.cpp.o.d"
  "CMakeFiles/apollo_apps.dir/cleverleaf/cleverleaf.cpp.o"
  "CMakeFiles/apollo_apps.dir/cleverleaf/cleverleaf.cpp.o.d"
  "CMakeFiles/apollo_apps.dir/lulesh/domain.cpp.o"
  "CMakeFiles/apollo_apps.dir/lulesh/domain.cpp.o.d"
  "CMakeFiles/apollo_apps.dir/lulesh/lulesh.cpp.o"
  "CMakeFiles/apollo_apps.dir/lulesh/lulesh.cpp.o.d"
  "libapollo_apps.a"
  "libapollo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
