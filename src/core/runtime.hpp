#pragma once

// The Apollo runtime: the begin/end hooks around every RAJA loop (§III,
// Fig. 5). One of two components is active per run:
//
//   Recorder — executes the launch, measures it, and appends a training
//              sample (kernel + instruction + application features, the
//              parameter values used, and the runtime);
//   Tuner    — evaluates the loaded decision models on the launch's feature
//              vector and selects the execution policy / chunk size.
//
// Mode Off executes with the kernel's static default policy — the baseline
// configurations the paper compares against. The same executable runs in any
// mode (env var APOLLO_MODE or API), and models load from files at runtime,
// so retraining never requires recompilation.
//
// Mode Adapt (extension, see docs/online-tuning.md) is the Tuner plus the
// src/online adaptation loop: launches feed a bounded SampleBuffer, per-kernel
// drift detection triggers background retrains, and freshly trained models
// hot-swap in via the versioned ModelRegistry — the "dynamically updating
// models" direction from the paper's conclusion, closed inside one process.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/kernel.hpp"
#include "core/model_params.hpp"
#include "core/tuner_model.hpp"
#include "online/online_tuner.hpp"
#include "online/sample_buffer.hpp"
#include "perf/record.hpp"
#include "perf/timer.hpp"
#include "raja/env_policy.hpp"
#include "raja/forall.hpp"
#include "raja/index_set.hpp"
#include "raja/policy_switcher.hpp"
#include "sim/machine.hpp"
#include "telemetry/quality.hpp"
#include "telemetry/telemetry.hpp"

namespace apollo {

class ClusterAccountant;

enum class Mode : std::uint8_t { Off, Record, Tune, Adapt };
enum class TimingSource : std::uint8_t { Model, Wallclock };

[[nodiscard]] const char* mode_name(Mode mode) noexcept;

/// How a recording run sets the tuned parameters.
struct TrainingConfig {
  /// When true (requires TimingSource::Model), one application execution
  /// records a sample for *every* parameter variant per launch — equivalent
  /// to the paper's one-run-per-value protocol on a deterministic app, at a
  /// fraction of the cost. When false, every launch runs `forced_policy` /
  /// `forced_chunk` and records exactly one sample (the paper's protocol).
  bool sweep_variants = true;
  raja::PolicyType forced_policy = raja::PolicyType::seq_segit_omp_parallel_for_exec;
  std::int64_t forced_chunk = 0;
  /// Chunk sizes recorded for the OpenMP variant (paper: 1..1024).
  std::vector<std::int64_t> chunk_values = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  /// OpenMP team sizes recorded at the default schedule (extension; empty =
  /// team-size sweep disabled).
  std::vector<unsigned> thread_values = {};
};

struct KernelStats {
  double seconds = 0.0;
  std::int64_t invocations = 0;
  /// Per-launch runtime distribution (always on; atomic bucket increments).
  telemetry::Histogram launch_seconds{telemetry::duration_bounds()};
};

struct RunStats {
  double total_seconds = 0.0;
  std::int64_t invocations = 0;
  std::map<std::string, KernelStats> per_kernel;  ///< keyed by loop_id
  /// Time spent evaluating models per tuned launch (Tune/Adapt modes).
  /// Histogram buckets replace the old mean-only view: stats_report prints
  /// p50/p95/p99 from here.
  telemetry::Histogram decision_latency{telemetry::duration_bounds()};
};

class Runtime {
public:
  /// Process-wide instance. Initial mode comes from APOLLO_MODE
  /// (off|record|tune) when set.
  static Runtime& instance();

  // --- configuration -------------------------------------------------------
  void set_mode(Mode mode) noexcept { mode_ = mode; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  void set_timing_source(TimingSource source) noexcept { timing_ = source; }
  [[nodiscard]] TimingSource timing_source() const noexcept { return timing_; }

  void set_machine(sim::MachineModel machine) { machine_ = machine; }
  [[nodiscard]] const sim::MachineModel& machine() const noexcept { return machine_; }

  /// OpenMP team size assumed by the machine model (defaults to all cores).
  void set_threads(unsigned threads) noexcept { threads_ = threads; }
  [[nodiscard]] unsigned threads() const noexcept;

  void set_training_config(TrainingConfig config) { training_ = std::move(config); }
  [[nodiscard]] const TrainingConfig& training_config() const noexcept { return training_; }

  /// Override every kernel's static default policy (the paper's "OpenMP
  /// everywhere" baseline). nullopt restores per-kernel defaults.
  void set_default_policy_override(std::optional<raja::PolicyType> policy) noexcept {
    default_override_ = policy;
  }

  /// When false, apollo::forall executes every body sequentially while still
  /// *charging* the selected variant's modeled cost. Model-timed experiment
  /// harnesses use this so wall-clock does not depend on the host's thread
  /// count; it is invalid (and ignored) under wall-clock timing.
  void set_execute_selected(bool execute) noexcept { execute_selected_ = execute; }
  [[nodiscard]] bool execute_selected() const noexcept {
    return execute_selected_ || timing_ == TimingSource::Wallclock;
  }

  // --- models --------------------------------------------------------------
  void set_policy_model(TunerModel model);
  void set_chunk_model(TunerModel model);
  void set_threads_model(TunerModel model);
  void clear_models() noexcept;
  [[nodiscard]] bool has_policy_model() const noexcept { return policy_model_.has_value(); }
  [[nodiscard]] bool has_chunk_model() const noexcept { return chunk_model_.has_value(); }
  [[nodiscard]] bool has_threads_model() const noexcept { return threads_model_.has_value(); }
  [[nodiscard]] const TunerModel& policy_model() const { return policy_model_.value(); }

  void load_policy_model_file(const std::string& path) { set_policy_model(TunerModel::load_file(path)); }
  void load_chunk_model_file(const std::string& path) { set_chunk_model(TunerModel::load_file(path)); }

  // --- results -------------------------------------------------------------
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RunStats{}; }

  /// Oldest-first copy of the buffered training samples. (The live buffer is
  /// bounded and shared with the background retrainer, so callers get a
  /// stable snapshot rather than a reference.)
  [[nodiscard]] std::vector<perf::SampleRecord> records() const { return records_.snapshot(); }
  [[nodiscard]] std::size_t record_count() const { return records_.size(); }
  void clear_records() { records_.clear(); }
  /// Bounded ring buffer backing records(); exposed for capacity control.
  [[nodiscard]] online::SampleBuffer& sample_buffer() noexcept { return records_; }
  /// Append all buffered records to `path` and clear the buffer.
  void flush_records(const std::string& path);

  // --- online adaptation (Mode::Adapt) --------------------------------------
  /// The adaptation loop (created on first use; shares the sample buffer).
  [[nodiscard]] online::OnlineTuner& online();
  /// Replace the adaptation configuration (waits for in-flight retrains).
  void configure_online(online::OnlineConfig config);
  [[nodiscard]] bool has_online() const noexcept { return online_ != nullptr; }

  // --- model quality (telemetry on, Tune/Adapt modes) -----------------------
  /// Per-kernel quality counters: online accuracy vs the best-known variant,
  /// cumulative regret seconds, probe counts, and predicted-vs-observed
  /// calibration. Sorted by kernel name; empty until a tuned launch ran with
  /// telemetry enabled.
  [[nodiscard]] std::vector<std::pair<std::string, telemetry::KernelQuality>> quality_snapshot();
  /// Ground-truth probes launched (all kernels) and total regret charged.
  [[nodiscard]] std::uint64_t probe_count();
  [[nodiscard]] double regret_seconds_total();

  /// Mirror every kernel charge into a per-rank accountant (strong-scaling
  /// experiments). Pass nullptr to detach. Not owned.
  void set_cluster_accountant(ClusterAccountant* accountant) noexcept { accountant_ = accountant; }
  [[nodiscard]] ClusterAccountant* cluster_accountant() const noexcept { return accountant_; }

  /// Reset everything (mode, models, stats, records, counters). For tests.
  void reset();

  // --- hooks (called by apollo::forall) -------------------------------------
  /// Decide execution parameters for this launch (and arm the stopwatch when
  /// measuring wall-clock).
  ModelParams begin(const KernelHandle& kernel, const raja::IndexSet& iset);

  /// Account for a finished launch: charge stats and, in Record mode, emit
  /// training samples.
  void end(const KernelHandle& kernel, const raja::IndexSet& iset, const ModelParams& params);

  /// Account for a loop in a physics package that has NOT been ported to
  /// RAJA/Apollo (ARES only has one ported package): charges its modeled
  /// runtime to the stats (and cluster accountant) with no tuning decision
  /// and no training sample. No-op under wall-clock timing, where such work
  /// is already inside the measured interval.
  void charge_external(const std::string& loop_id, const sim::CostQuery& query);

  /// Feature resolver used by the tuner (exposed for tests): maps a feature
  /// name to its raw value for this launch.
  [[nodiscard]] std::optional<perf::Value> resolve_feature(const std::string& name,
                                                           const KernelHandle& kernel,
                                                           const raja::IndexSet& iset) const;

private:
  Runtime();

  /// One feature of a loaded model, pre-resolved so tune-time evaluation
  /// does no string matching: the source is fixed and categorical encodings
  /// are hash lookups. Built once when a model is loaded.
  struct CompiledFeature {
    enum class Source : std::uint8_t {
      Func, FuncSize, IndexType, LoopId, NumIndices, NumSegments, Stride, Mnemonic, App
    };
    Source source = Source::App;
    instr::Mnemonic mnemonic = instr::Mnemonic::count_;
    std::string key;  ///< blackboard attribute name (App source)
    std::unordered_map<std::string, double> dictionary;  ///< categorical codes
  };

  [[nodiscard]] std::vector<CompiledFeature> compile_features(const TunerModel& model) const;
  [[nodiscard]] int predict_compiled(const TunerModel& model,
                                     const std::vector<CompiledFeature>& features,
                                     const KernelHandle& kernel, const raja::IndexSet& iset);

  /// Shared Tune/Adapt prediction: evaluate whichever models are loaded.
  void apply_models(ModelParams& params, const KernelHandle& kernel, const raja::IndexSet& iset);
  /// Adapt hot-swap: poll the registry version and recompile models on change.
  void refresh_adapt_models();

  [[nodiscard]] sim::CostQuery make_query(const KernelHandle& kernel, const raja::IndexSet& iset,
                                          raja::PolicyType policy, std::int64_t chunk,
                                          unsigned team = 0) const;
  [[nodiscard]] double measure_seconds(const sim::CostQuery& query);
  void charge(const std::string& loop_id, double seconds);
  void emit_record(const KernelHandle& kernel, const raja::IndexSet& iset,
                   raja::PolicyType policy, std::int64_t chunk, double seconds,
                   unsigned team = 0);

  // --- telemetry (all dormant behind one branch when telemetry is off) -----
  /// Cached per-kernel metric handles: interned name, launch counter,
  /// per-variant dispatch counters, decision-latency histogram. Registry
  /// lookups are paid once per kernel (and once per new variant), never per
  /// launch. Guarded by stats_mutex_.
  struct KernelTelemetry {
    const char* name = nullptr;
    telemetry::Histogram* decision_seconds = nullptr;
    telemetry::Gauge* accuracy = nullptr;        ///< apollo_model_accuracy
    telemetry::Gauge* regret_seconds = nullptr;  ///< apollo_regret_seconds_total
    std::vector<std::pair<std::uint64_t, telemetry::Counter*>> variants;
  };
  KernelTelemetry& kernel_telemetry_locked(const KernelHandle& kernel);
  telemetry::Counter& variant_counter_locked(KernelTelemetry& entry, const KernelHandle& kernel,
                                             const ModelParams& params);
  void update_stats_locked(KernelStats& kernel_stats, double seconds);
  /// Shared Tune/Adapt decision wrapper: times apply_models into the stats
  /// histogram and (telemetry on) arms the decide span + sampled introspection.
  void tuned_decision(ModelParams& params, const KernelHandle& kernel,
                      const raja::IndexSet& iset, bool telem);
  void maybe_capture_decision(const ModelParams& params, const KernelHandle& kernel,
                              const raja::IndexSet& iset);

  Mode mode_ = Mode::Off;
  TimingSource timing_ = TimingSource::Model;
  sim::MachineModel machine_{};
  unsigned threads_ = 0;  // 0 = machine cores
  TrainingConfig training_{};
  std::optional<raja::PolicyType> default_override_;
  std::optional<TunerModel> policy_model_;
  std::optional<TunerModel> chunk_model_;
  std::optional<TunerModel> threads_model_;
  std::vector<CompiledFeature> policy_features_;
  std::vector<CompiledFeature> chunk_features_;
  std::vector<CompiledFeature> threads_features_;
  std::vector<double> feature_buffer_;

  bool execute_selected_ = true;
  ClusterAccountant* accountant_ = nullptr;
  /// charge() may be reached from concurrent application threads; the sample
  /// counter additionally feeds the background retrainer's wait paths.
  std::mutex stats_mutex_;
  RunStats stats_{};
  online::SampleBuffer records_{online::kDefaultSampleCapacity};
  std::atomic<std::uint64_t> sample_counter_{0};
  perf::Stopwatch stopwatch_{};

  std::unique_ptr<online::OnlineTuner> online_;
  std::uint64_t adapt_version_ = 0;  ///< registry version currently compiled

  std::unordered_map<std::string, KernelTelemetry> kernel_telemetry_;  ///< stats_mutex_
  const std::string* last_telemetry_key_ = nullptr;  ///< one-entry lookup cache (stats_mutex_)
  KernelTelemetry* last_telemetry_ = nullptr;

  /// Online model-quality accounting (stats_mutex_). The probe rotor cycles
  /// ground-truth probes round-robin over the non-executed variants.
  telemetry::QualityAccountant quality_;
  std::uint64_t probe_rotor_ = 0;
};

/// The application-facing execution method: decide, run, account.
template <typename Body>
void forall(const KernelHandle& kernel, const raja::IndexSet& iset, Body&& body) {
  auto& runtime = Runtime::instance();
  const ModelParams params = runtime.begin(kernel, iset);
  if (runtime.execute_selected()) {
    raja::apollo::policySwitcher(params.policy, params.chunk_size, [&](auto exec) {
      if constexpr (std::is_same_v<decltype(exec), raja::omp_parallel_for_exec>) {
        exec.threads = params.threads;
      }
      raja::forall(exec, iset, body);
    });
  } else {
    raja::forall(raja::seq_exec{}, iset, body);
  }
  runtime.end(kernel, iset, params);
}

/// Convenience overload for a contiguous [0, n) range.
template <typename Body>
void forall(const KernelHandle& kernel, raja::Index n, Body&& body) {
  forall(kernel, raja::IndexSet::range(0, n), std::forward<Body>(body));
}

}  // namespace apollo
