#include "service/wire.hpp"

#include <array>
#include <cstring>

namespace apollo::service {

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::Hello: return "HELLO";
    case FrameType::SampleBatch: return "SAMPLE_BATCH";
    case FrameType::ModelPush: return "MODEL_PUSH";
    case FrameType::Ack: return "ACK";
    case FrameType::Stats: return "STATS";
    case FrameType::Telemetry: return "TELEMETRY";
  }
  return "?";
}

// --- crc32 --------------------------------------------------------------------

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- WireWriter ---------------------------------------------------------------

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void WireWriter::varint(std::uint64_t v) {
  while (v >= 0x80u) {
    out_.push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out_.push_back(static_cast<char>(v));
}

void WireWriter::svarint(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void WireWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::string(std::string_view v) {
  varint(v.size());
  out_.append(v.data(), v.size());
}

// --- WireReader ---------------------------------------------------------------

void WireReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n) throw WireError("wire: truncated payload");
}

std::uint8_t WireReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++])) << (8 * i);
  return v;
}

std::uint64_t WireReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const auto byte = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift >= 63 && byte > 1) throw WireError("wire: varint overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return v;
    shift += 7;
    if (shift > 63) throw WireError("wire: varint too long");
  }
}

std::int64_t WireReader::svarint() {
  const std::uint64_t raw = varint();
  return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view WireReader::string() {
  const std::uint64_t len = varint();
  if (len > remaining()) throw WireError("wire: string length exceeds payload");
  const std::string_view out = data_.substr(pos_, static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

// --- HELLO / ACK / STATS ------------------------------------------------------

std::string encode_hello(const HelloFrame& hello) {
  WireWriter w;
  w.u32(hello.protocol);
  w.u64(hello.pid);
  w.string(hello.client_name);
  return w.take();
}

HelloFrame decode_hello(std::string_view payload) {
  WireReader r(payload);
  HelloFrame hello;
  hello.protocol = r.u32();
  hello.pid = r.u64();
  hello.client_name = std::string(r.string());
  if (!r.done()) throw WireError("wire: trailing bytes after HELLO");
  return hello;
}

std::string encode_ack(const AckFrame& ack) {
  WireWriter w;
  w.u32(ack.protocol);
  w.u64(ack.batch_seq);
  w.u64(ack.generation);
  w.u64(ack.samples_accepted);
  w.u64(ack.client_id);
  return w.take();
}

AckFrame decode_ack(std::string_view payload) {
  WireReader r(payload);
  AckFrame ack;
  ack.protocol = r.u32();
  ack.batch_seq = r.u64();
  ack.generation = r.u64();
  ack.samples_accepted = r.u64();
  ack.client_id = r.u64();
  if (!r.done()) throw WireError("wire: trailing bytes after ACK");
  return ack;
}

std::string encode_stats(const StatsFrame& stats) {
  WireWriter w;
  w.u64(stats.clients_connected);
  w.u64(stats.clients_total);
  w.u64(stats.batches_received);
  w.u64(stats.samples_received);
  w.u64(stats.frames_rejected);
  w.u64(stats.trains_completed);
  w.u64(stats.generation);
  w.varint(stats.per_kernel_samples.size());
  for (const auto& [kernel, count] : stats.per_kernel_samples) {
    w.string(kernel);
    w.varint(count);
  }
  return w.take();
}

StatsFrame decode_stats(std::string_view payload) {
  WireReader r(payload);
  StatsFrame stats;
  stats.clients_connected = r.u64();
  stats.clients_total = r.u64();
  stats.batches_received = r.u64();
  stats.samples_received = r.u64();
  stats.frames_rejected = r.u64();
  stats.trains_completed = r.u64();
  stats.generation = r.u64();
  const std::uint64_t kernels = r.varint();
  if (kernels > payload.size()) throw WireError("wire: STATS kernel count exceeds payload");
  for (std::uint64_t k = 0; k < kernels; ++k) {
    const std::string name(r.string());
    stats.per_kernel_samples[name] = r.varint();
  }
  if (!r.done()) throw WireError("wire: trailing bytes after STATS");
  return stats;
}

// --- MODEL_PUSH ---------------------------------------------------------------

namespace {
constexpr std::uint8_t kHasPolicy = 1u << 0;
constexpr std::uint8_t kHasChunk = 1u << 1;
constexpr std::uint8_t kHasThreads = 1u << 2;
}  // namespace

std::string encode_model_push(const ModelPushFrame& push) {
  WireWriter w;
  w.u64(push.generation);
  w.u64(push.trained_on_samples);
  w.u64(push.pushed_ns);
  // Lineage: per contributing client, its ascending batch seqs delta-coded
  // (consecutive seqs — the common case — cost one byte each).
  w.varint(push.lineage.size());
  for (const auto& entry : push.lineage) {
    w.varint(entry.client_id);
    w.varint(entry.seqs.size());
    std::uint64_t prev = 0;
    for (const std::uint64_t seq : entry.seqs) {
      w.varint(seq - prev);
      prev = seq;
    }
  }
  std::uint8_t flags = 0;
  if (push.policy_text) flags |= kHasPolicy;
  if (push.chunk_text) flags |= kHasChunk;
  if (push.threads_text) flags |= kHasThreads;
  w.u8(flags);
  if (push.policy_text) w.string(*push.policy_text);
  if (push.chunk_text) w.string(*push.chunk_text);
  if (push.threads_text) w.string(*push.threads_text);
  return w.take();
}

ModelPushFrame decode_model_push(std::string_view payload) {
  WireReader r(payload);
  ModelPushFrame push;
  push.generation = r.u64();
  push.trained_on_samples = r.u64();
  push.pushed_ns = r.u64();
  const std::uint64_t entries = r.varint();
  if (entries > payload.size()) throw WireError("wire: MODEL_PUSH lineage exceeds payload");
  push.lineage.reserve(static_cast<std::size_t>(entries));
  for (std::uint64_t e = 0; e < entries; ++e) {
    LineageEntry entry;
    entry.client_id = r.varint();
    const std::uint64_t seqs = r.varint();
    if (seqs > payload.size()) throw WireError("wire: MODEL_PUSH lineage seqs exceed payload");
    entry.seqs.reserve(static_cast<std::size_t>(seqs));
    std::uint64_t prev = 0;
    for (std::uint64_t s = 0; s < seqs; ++s) {
      prev += r.varint();
      entry.seqs.push_back(prev);
    }
    push.lineage.push_back(std::move(entry));
  }
  const std::uint8_t flags = r.u8();
  if ((flags & ~(kHasPolicy | kHasChunk | kHasThreads)) != 0) {
    throw WireError("wire: MODEL_PUSH has unknown model flags");
  }
  if (flags & kHasPolicy) push.policy_text = std::string(r.string());
  if (flags & kHasChunk) push.chunk_text = std::string(r.string());
  if (flags & kHasThreads) push.threads_text = std::string(r.string());
  if (!r.done()) throw WireError("wire: trailing bytes after MODEL_PUSH");
  return push;
}

// --- SAMPLE_BATCH -------------------------------------------------------------

namespace {

/// Value type tags inside a coded record.
constexpr std::uint8_t kValueInt = 0;
constexpr std::uint8_t kValueReal = 1;
constexpr std::uint8_t kValueString = 2;

}  // namespace

std::string encode_sample_batch(const SampleBatch& batch) {
  // First pass: intern every key and string value. Keys repeat across every
  // record and most string values (policy names, kernel ids, problem names)
  // repeat across most, so the table is tiny relative to the raw text.
  std::map<std::string_view, std::uint64_t> table;
  std::vector<std::string_view> strings;
  const auto intern = [&](std::string_view s) -> std::uint64_t {
    const auto [it, inserted] = table.emplace(s, strings.size());
    if (inserted) strings.push_back(s);
    return it->second;
  };
  for (const auto& record : batch.records) {
    for (const auto& [key, value] : record) {
      intern(key);
      if (value.is_string()) intern(value.as_string());
    }
  }

  WireWriter w;
  w.varint(batch.seq);
  // Trace context (v2): who shipped this, against which model, and when.
  w.varint(batch.client_id);
  w.varint(batch.origin_generation);
  w.u64(batch.sent_ns);
  w.varint(strings.size());
  for (const std::string_view s : strings) w.string(s);
  w.varint(batch.records.size());
  for (const auto& record : batch.records) {
    w.varint(record.size());
    for (const auto& [key, value] : record) {
      w.varint(table.at(key));
      if (value.is_int()) {
        w.u8(kValueInt);
        w.svarint(value.as_int());
      } else if (value.is_real()) {
        w.u8(kValueReal);
        w.f64(value.as_real());
      } else {
        w.u8(kValueString);
        w.varint(table.at(value.as_string()));
      }
    }
  }
  return w.take();
}

SampleBatch decode_sample_batch(std::string_view payload) {
  WireReader r(payload);
  SampleBatch batch;
  batch.seq = r.varint();
  batch.client_id = r.varint();
  batch.origin_generation = r.varint();
  batch.sent_ns = r.u64();
  const std::uint64_t table_size = r.varint();
  if (table_size > payload.size()) throw WireError("wire: batch string table exceeds payload");
  std::vector<std::string_view> strings;
  strings.reserve(static_cast<std::size_t>(table_size));
  for (std::uint64_t i = 0; i < table_size; ++i) strings.push_back(r.string());
  const auto lookup = [&](std::uint64_t index) -> std::string_view {
    if (index >= strings.size()) throw WireError("wire: batch string index out of range");
    return strings[static_cast<std::size_t>(index)];
  };
  const std::uint64_t count = r.varint();
  if (count > payload.size()) throw WireError("wire: batch record count exceeds payload");
  batch.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t n = 0; n < count; ++n) {
    perf::SampleRecord record;
    const std::uint64_t entries = r.varint();
    if (entries > payload.size()) throw WireError("wire: record entry count exceeds payload");
    for (std::uint64_t e = 0; e < entries; ++e) {
      const std::string key(lookup(r.varint()));
      const std::uint8_t tag = r.u8();
      switch (tag) {
        case kValueInt: record[key] = perf::Value(r.svarint()); break;
        case kValueReal: record[key] = perf::Value(r.f64()); break;
        case kValueString: record[key] = perf::Value(std::string(lookup(r.varint()))); break;
        default: throw WireError("wire: unknown value tag in batch");
      }
    }
    batch.records.push_back(std::move(record));
  }
  if (!r.done()) throw WireError("wire: trailing bytes after SAMPLE_BATCH");
  return batch;
}

// --- TELEMETRY ----------------------------------------------------------------

namespace {

/// Series kind tags on the wire (decoupled from the enum's binary layout).
constexpr std::uint8_t kKindCounter = 0;
constexpr std::uint8_t kKindGauge = 1;
constexpr std::uint8_t kKindHistogram = 2;

}  // namespace

std::string encode_telemetry(const TelemetryFrame& frame) {
  // Same dictionary trick as SAMPLE_BATCH: metric names, label bodies, and
  // help strings repeat across series (and help strings repeat across every
  // labeled series of a family), so they are interned once per frame.
  std::map<std::string_view, std::uint64_t> table;
  std::vector<std::string_view> strings;
  const auto intern = [&](std::string_view s) -> std::uint64_t {
    const auto [it, inserted] = table.emplace(s, strings.size());
    if (inserted) strings.push_back(s);
    return it->second;
  };
  for (const auto& series : frame.snapshot.series) {
    intern(series.name);
    intern(series.labels);
    intern(series.help);
  }

  WireWriter w;
  w.varint(frame.applied_generation);
  w.u64(frame.sent_ns);
  w.varint(strings.size());
  for (const std::string_view s : strings) w.string(s);
  w.varint(frame.snapshot.series.size());
  for (const auto& series : frame.snapshot.series) {
    w.varint(table.at(series.name));
    w.varint(table.at(series.labels));
    w.varint(table.at(series.help));
    switch (series.kind) {
      case telemetry::MetricKind::Counter:
        w.u8(kKindCounter);
        w.varint(series.counter_value);
        break;
      case telemetry::MetricKind::Gauge:
        w.u8(kKindGauge);
        w.f64(series.gauge_value);
        break;
      case telemetry::MetricKind::Histogram:
        w.u8(kKindHistogram);
        w.varint(series.hist_count);
        w.f64(series.hist_sum);
        w.varint(series.hist_bounds.size());
        for (const double bound : series.hist_bounds) w.f64(bound);
        for (std::size_t i = 0; i <= series.hist_bounds.size(); ++i) {
          w.varint(i < series.hist_buckets.size() ? series.hist_buckets[i] : 0);
        }
        break;
    }
  }
  return w.take();
}

TelemetryFrame decode_telemetry(std::string_view payload) {
  WireReader r(payload);
  TelemetryFrame frame;
  frame.applied_generation = r.varint();
  frame.sent_ns = r.u64();
  const std::uint64_t table_size = r.varint();
  if (table_size > payload.size()) throw WireError("wire: telemetry string table exceeds payload");
  std::vector<std::string_view> strings;
  strings.reserve(static_cast<std::size_t>(table_size));
  for (std::uint64_t i = 0; i < table_size; ++i) strings.push_back(r.string());
  const auto lookup = [&](std::uint64_t index) -> std::string_view {
    if (index >= strings.size()) throw WireError("wire: telemetry string index out of range");
    return strings[static_cast<std::size_t>(index)];
  };
  const std::uint64_t count = r.varint();
  if (count > payload.size()) throw WireError("wire: telemetry series count exceeds payload");
  frame.snapshot.series.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t n = 0; n < count; ++n) {
    telemetry::SeriesSnapshot series;
    series.name = std::string(lookup(r.varint()));
    series.labels = std::string(lookup(r.varint()));
    series.help = std::string(lookup(r.varint()));
    switch (r.u8()) {
      case kKindCounter:
        series.kind = telemetry::MetricKind::Counter;
        series.counter_value = r.varint();
        break;
      case kKindGauge:
        series.kind = telemetry::MetricKind::Gauge;
        series.gauge_value = r.f64();
        break;
      case kKindHistogram: {
        series.kind = telemetry::MetricKind::Histogram;
        series.hist_count = r.varint();
        series.hist_sum = r.f64();
        const std::uint64_t bounds = r.varint();
        if (bounds > payload.size()) {
          throw WireError("wire: telemetry histogram bounds exceed payload");
        }
        series.hist_bounds.reserve(static_cast<std::size_t>(bounds));
        for (std::uint64_t b = 0; b < bounds; ++b) series.hist_bounds.push_back(r.f64());
        series.hist_buckets.reserve(static_cast<std::size_t>(bounds) + 1);
        for (std::uint64_t b = 0; b <= bounds; ++b) series.hist_buckets.push_back(r.varint());
        break;
      }
      default:
        throw WireError("wire: unknown telemetry series kind");
    }
    // upsert keeps the snapshot's sorted-by-(name,labels) invariant without
    // trusting the peer's ordering (and dedupes a hostile repeated key).
    frame.snapshot.upsert(std::move(series));
  }
  if (!r.done()) throw WireError("wire: trailing bytes after TELEMETRY");
  return frame;
}

// --- framing ------------------------------------------------------------------

std::string encode_frame(FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) throw WireError("wire: frame payload exceeds cap");
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  std::string out = w.take();
  out.append(payload.data(), payload.size());
  return out;
}

FrameHeader decode_frame_header(const char (&bytes)[kFrameHeaderBytes]) {
  WireReader r(std::string_view(bytes, kFrameHeaderBytes));
  FrameHeader header;
  const std::uint8_t type = r.u8();
  switch (static_cast<FrameType>(type)) {
    case FrameType::Hello:
    case FrameType::SampleBatch:
    case FrameType::ModelPush:
    case FrameType::Ack:
    case FrameType::Stats:
    case FrameType::Telemetry:
      header.type = static_cast<FrameType>(type);
      break;
    default:
      throw WireError("wire: unknown frame type " + std::to_string(type));
  }
  header.payload_len = r.u32();
  header.crc = r.u32();
  if (header.payload_len > kMaxFramePayload) {
    throw WireError("wire: frame length " + std::to_string(header.payload_len) + " exceeds cap");
  }
  return header;
}

void check_payload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_len) throw WireError("wire: payload length mismatch");
  if (crc32(payload) != header.crc) throw WireError("wire: payload CRC mismatch");
}

}  // namespace apollo::service
