#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace apollo::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

Histogram::Histogram(const Histogram& other) { *this = other; }

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  bounds_ = other.bounds_;
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(other.buckets_ ? other.buckets_[i].load(std::memory_order_relaxed) : 0,
                      std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

void Histogram::observe(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (!buckets_) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(1,
                                                                     std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0 || bounds_.empty() || !buckets_) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket: clamp
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within = (target - static_cast<double>(cumulative)) /
                            static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  if (!buckets_) return;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double first, double factor, int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double bound = first;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& duration_bounds() {
  static const std::vector<double> bounds = exponential_bounds(1e-9, 2.0, 36);
  return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(std::string_view name,
                                                        std::string_view help, MetricKind kind) {
  auto it = families_.find(std::string(name));
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: kind mismatch for metric " + std::string(name));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = family_locked(name, help, MetricKind::Counter).series[std::string(labels)];
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = family_locked(name, help, MetricKind::Gauge).series[std::string(labels)];
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                      const std::vector<double>& upper_bounds,
                                      std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = family_locked(name, help, MetricKind::Histogram).series[std::string(labels)];
  if (!series.histogram) series.histogram = std::make_unique<Histogram>(upper_bounds);
  return *series.histogram;
}

namespace {

std::string format_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// `name{labels}` or `name{labels,extra}` with empty pieces elided.
std::string series_name(const std::string& name, const std::string& labels,
                        const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

}  // namespace

void MetricsRegistry::write(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) out << "# HELP " << name << " " << family.help << "\n";
    out << "# TYPE " << name << " "
        << (family.kind == MetricKind::Counter ? "counter"
            : family.kind == MetricKind::Gauge ? "gauge"
                                               : "histogram")
        << "\n";
    for (const auto& [labels, series] : family.series) {
      switch (family.kind) {
        case MetricKind::Counter:
          out << series_name(name, labels) << " " << series.counter->value() << "\n";
          break;
        case MetricKind::Gauge:
          out << series_name(name, labels) << " " << format_number(series.gauge->value()) << "\n";
          break;
        case MetricKind::Histogram: {
          const Histogram& hist = *series.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
            cumulative += hist.bucket(i);
            out << series_name(name + "_bucket", labels,
                               "le=\"" + format_number(hist.bounds()[i]) + "\"")
                << " " << cumulative << "\n";
          }
          out << series_name(name + "_bucket", labels, "le=\"+Inf\"") << " " << hist.count()
              << "\n";
          out << series_name(name + "_sum", labels) << " " << format_number(hist.sum()) << "\n";
          out << series_name(name + "_count", labels) << " " << hist.count() << "\n";
          break;
        }
      }
    }
  }
}

std::string MetricsRegistry::expose() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

void MetricsRegistry::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("MetricsRegistry: cannot open " + tmp);
    write(out);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("MetricsRegistry: cannot rename " + tmp + " to " + path);
  }
}

void MetricsRegistry::zero() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    (void)name;
    for (auto& [labels, series] : family.series) {
      (void)labels;
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

std::size_t MetricsRegistry::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [name, family] : families_) {
    (void)name;
    count += family.series.size();
  }
  return count;
}

}  // namespace apollo::telemetry
