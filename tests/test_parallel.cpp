// Unit and property tests for the thread pool's OpenMP-static parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "parallel/thread_priority.hpp"

using apollo::par::ThreadPool;

TEST(ThreadPool, DefaultConstructionHasWorkers) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 1, [&](std::int64_t) { ++calls; });
  pool.parallel_for(5, 3, 1, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, EveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, 7, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ThreadPool, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(10, 20, 2, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 145);  // 10+...+19
}

TEST(ThreadPool, DefaultChunkIsOneBlockPerThread) {
  // With chunk<=0 and T threads, thread w gets the contiguous block
  // [w*ceil(N/T), ...) — check the block boundaries via observed ordering:
  // indices within one thread's share execute in ascending order.
  ThreadPool pool(4);
  const std::int64_t n = 103;
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  std::mutex m;
  std::atomic<int> next_id{0};
  thread_local int my_id = -1;
  pool.parallel_for(0, n, 0, [&](std::int64_t i) {
    if (my_id < 0) my_id = next_id++;
    std::lock_guard lock(m);
    owner[static_cast<std::size_t>(i)] = my_id;
  });
  // ceil(103/4) = 26: indices [0,26) share an owner, [26,52) share one, etc.
  for (std::int64_t block = 0; block < 4; ++block) {
    const std::int64_t lo = block * 26;
    const std::int64_t hi = std::min<std::int64_t>(lo + 26, n);
    if (lo >= n) break;
    const int first = owner[static_cast<std::size_t>(lo)];
    ASSERT_GE(first, 0);
    for (std::int64_t i = lo; i < hi; ++i) {
      EXPECT_EQ(owner[static_cast<std::size_t>(i)], first) << "index " << i;
    }
  }
}

TEST(ThreadPool, StaticScheduleRoundRobinBlocks) {
  // schedule(static, chunk): block k belongs to thread k % T, so two indices
  // i and i+chunk*T always share a thread, and i / i+chunk (different blocks,
  // adjacent) belong to different threads when T > 1.
  const unsigned T = 3;
  const std::int64_t chunk = 5;
  ThreadPool pool(T);
  const std::int64_t n = 90;
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  std::mutex m;
  std::atomic<int> next_id{0};
  thread_local int my_id = -1;
  pool.parallel_for(0, n, chunk, [&](std::int64_t i) {
    if (my_id < 0) my_id = next_id++;
    std::lock_guard lock(m);
    owner[static_cast<std::size_t>(i)] = my_id;
  });
  for (std::int64_t i = 0; i + chunk * T < n; ++i) {
    EXPECT_EQ(owner[static_cast<std::size_t>(i)],
              owner[static_cast<std::size_t>(i + chunk * T)]);
  }
  // Indices within one block share an owner.
  for (std::int64_t b = 0; b < n / chunk; ++b) {
    for (std::int64_t i = b * chunk; i < (b + 1) * chunk; ++i) {
      EXPECT_EQ(owner[static_cast<std::size_t>(i)], owner[static_cast<std::size_t>(b * chunk)]);
    }
  }
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 1,
                        [&](std::int64_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_for(0, 1, 1, [&](std::int64_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, SequentialJobsReuseWorkers) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 100, 9, [&](std::int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50 * 4950);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  auto& a = ThreadPool::global();
  auto& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.parallel_for(0, 16, 4, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, TeamCapLimitsParticipants) {
  ThreadPool pool(4);
  std::mutex m;
  std::set<std::thread::id> participants;
  const std::function<void(std::int64_t)> body = [&](std::int64_t) {
    std::lock_guard lock(m);
    participants.insert(std::this_thread::get_id());
  };
  pool.parallel_for(0, 1000, 1, body, /*team=*/2);
  EXPECT_LE(participants.size(), 2u);
}

TEST(ThreadPool, TeamCapStillCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  const std::function<void(std::int64_t)> body = [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)]++;
  };
  for (unsigned team : {1u, 2u, 3u, 4u, 9u}) {  // 9 > pool size: clamped
    for (auto& h : hits) h = 0;
    pool.parallel_for(0, 500, 7, body, team);
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "team=" << team;
  }
}

TEST(ThreadPool, TeamOfOneRunsInline) {
  ThreadPool pool(4);
  std::thread::id seen;
  const std::function<void(std::int64_t)> body = [&](std::int64_t) {
    seen = std::this_thread::get_id();
  };
  pool.parallel_for(0, 3, 1, body, /*team=*/1);
  EXPECT_EQ(seen, std::this_thread::get_id());
}

class ChunkSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ChunkSweep, CoverageForAnyChunk) {
  ThreadPool pool(4);
  const std::int64_t n = 257;  // prime-ish, exercises partial tail blocks
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, GetParam(), [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  std::int64_t total = 0;
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
    total += h.load();
  }
  EXPECT_EQ(total, n);
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSweep,
                         ::testing::Values<std::int64_t>(0, 1, 2, 3, 7, 16, 64, 256, 257, 1000));

class ThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadSweep, SumIndependentOfThreadCount) {
  ThreadPool pool(GetParam());
  std::vector<double> out(1024, 0.0);
  pool.parallel_for(0, 1024, 13, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;
  });
  const double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 0.5 * 1023.0 * 1024.0 / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(1u, 2u, 3u, 4u, 8u));

// --- Fork-join executor: caller participation, determinism, reentrancy ----

TEST(ForkJoin, CallerExecutesShareZero) {
  // The caller is team member 0: block 0 must run on the calling thread, not
  // be handed to a pool worker while the caller sleeps.
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::mutex m;
  std::map<std::int64_t, std::thread::id> owner;
  pool.parallel_for(0, 16, 4, [&](std::int64_t i) {
    std::lock_guard lock(m);
    owner[i] = std::this_thread::get_id();
  });
  // chunk=4, team=4: block 0 = [0,4) belongs to member 0 = the caller.
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(owner[i], caller) << "index " << i;
}

TEST(ForkJoin, StaticScheduleMatchesOpenMPSpecAcrossChunkAndTeamSweeps) {
  // Bit-identical block->member map to OpenMP schedule(static, chunk): two
  // indices share a thread iff their blocks k1, k2 satisfy k1 % T == k2 % T,
  // and member 0 is always the caller.
  ThreadPool pool(4);
  const std::int64_t n = 211;  // prime: exercises ragged tails
  const auto caller = std::this_thread::get_id();
  for (const std::int64_t chunk : {std::int64_t{1}, std::int64_t{2}, std::int64_t{3},
                                   std::int64_t{7}, std::int64_t{16}, std::int64_t{64},
                                   std::int64_t{0}}) {
    for (const unsigned team : {1u, 2u, 3u, 4u}) {
      std::vector<std::thread::id> owner(static_cast<std::size_t>(n));
      std::mutex m;
      pool.parallel_for(
          0, n, chunk,
          [&](std::int64_t i) {
            std::lock_guard lock(m);
            owner[static_cast<std::size_t>(i)] = std::this_thread::get_id();
          },
          team);
      const std::int64_t effective_chunk =
          chunk > 0 ? chunk : (n + team - 1) / team;  // OpenMP default split
      std::map<std::int64_t, std::thread::id> member_thread;  // k % T -> thread
      for (std::int64_t i = 0; i < n; ++i) {
        const std::int64_t member = (i / effective_chunk) % team;
        const auto [it, inserted] =
            member_thread.emplace(member, owner[static_cast<std::size_t>(i)]);
        EXPECT_EQ(it->second, owner[static_cast<std::size_t>(i)])
            << "chunk=" << chunk << " team=" << team << " index=" << i << (inserted ? "" : "");
      }
      // Distinct members map to distinct threads, and member 0 is the caller.
      std::set<std::thread::id> distinct;
      for (const auto& [member, tid] : member_thread) {
        (void)member;
        distinct.insert(tid);
      }
      EXPECT_EQ(distinct.size(), member_thread.size()) << "chunk=" << chunk << " team=" << team;
      ASSERT_TRUE(member_thread.count(0));
      EXPECT_EQ(member_thread[0], caller) << "chunk=" << chunk << " team=" << team;
    }
  }
}

TEST(ForkJoin, BlockTrampolineReceivesExactStaticBlocks) {
  // parallel_for_blocks must cut [begin, end) into the exact OpenMP
  // static,chunk block set: [begin + k*chunk, min(end, begin + (k+1)*chunk)).
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> blocks;
  struct Ctx {
    std::mutex* m;
    std::vector<std::pair<std::int64_t, std::int64_t>>* blocks;
  } ctx{&m, &blocks};
  pool.parallel_for_blocks(
      10, 47, 5,
      [](const void* body, std::int64_t lo, std::int64_t hi) {
        const auto& c = *static_cast<const Ctx*>(body);
        std::lock_guard lock(*c.m);
        c.blocks->emplace_back(lo, hi);
      },
      &ctx);
  std::sort(blocks.begin(), blocks.end());
  std::vector<std::pair<std::int64_t, std::int64_t>> expected;
  for (std::int64_t lo = 10; lo < 47; lo += 5) expected.emplace_back(lo, std::min<std::int64_t>(47, lo + 5));
  EXPECT_EQ(blocks, expected);
}

TEST(ForkJoin, NestedParallelForFromWorkerRunsInline) {
  // A parallel_for issued from inside a share (worker or caller) must run
  // inline on that thread — the old pool deadlocked on job serialization.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 16);
  std::atomic<int> nested_on_other_thread{0};
  pool.parallel_for(0, 64, 1, [&](std::int64_t outer) {
    const auto outer_thread = std::this_thread::get_id();
    pool.parallel_for(0, 16, 4, [&](std::int64_t inner) {
      if (std::this_thread::get_id() != outer_thread) nested_on_other_thread.fetch_add(1);
      hits[static_cast<std::size_t>(outer * 16 + inner)].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(nested_on_other_thread.load(), 0);  // nested regions stay on the share's thread
}

TEST(ForkJoin, InsideRegionFlagTracksShares) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.inside_region());
  std::atomic<int> inside{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t) {
    if (pool.inside_region()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(pool.inside_region());
}

TEST(ForkJoin, ExceptionFromCallerShare) {
  // chunk=8, team=2: index 0 is in block 0 — the caller's own share.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 16, 8,
                                 [&](std::int64_t i) {
                                   if (i == 0) throw std::runtime_error("caller boom");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ForkJoin, ExceptionFromWorkerShare) {
  // chunk=8, team=2: index 8 is in block 1 — a pool worker's share.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 16, 8,
                                 [&](std::int64_t i) {
                                   if (i == 8) throw std::runtime_error("worker boom");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, 1, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ForkJoin, ExceptionsFromEveryShareRethrowsOne) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 4, 1, [&](std::int64_t) { throw std::logic_error("all"); }),
               std::logic_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, 1, [&](std::int64_t) { count++; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ForkJoin, PoolCountersTrackLaunchesAndInlineRuns) {
  ThreadPool pool(4);
  const auto before = ThreadPool::stats();
  std::atomic<int> sink{0};
  pool.parallel_for(0, 100, 1, [&](std::int64_t) { sink++; });           // fork-join
  pool.parallel_for(0, 100, 1, [&](std::int64_t) { sink++; }, 1);       // team of 1: inline
  const auto after = ThreadPool::stats();
  EXPECT_EQ(after.launches - before.launches, 1u);
  EXPECT_EQ(after.inline_runs - before.inline_runs, 1u);
}

TEST(ForkJoin, ParkPoolCompletesViaCondvar) {
  // spin_us=0 disables spinning: every wait must park, so the park and
  // wakeup counters advance while results stay exact.
  ThreadPool pool(4, /*spin_us=*/0);
  EXPECT_EQ(pool.spin_us(), 0);
  const auto before = ThreadPool::stats();
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(0, 100, 9, [&](std::int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 20 * 4950);
  const auto after = ThreadPool::stats();
  EXPECT_EQ(after.launches - before.launches, 20u);
  EXPECT_GT(after.park_completions, before.park_completions);
}

TEST(ForkJoin, SpinPoolCompletesWithinBudget) {
  // A generous spin budget with back-to-back launches: at least some waits
  // should finish inside the spin window (all of them on idle hardware, but
  // a loaded CI runner can preempt a spinner — assert growth, not totality).
  ThreadPool pool(4, /*spin_us=*/20000);
  const auto before = ThreadPool::stats();
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 64, 4, [&](std::int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 50 * 2016);
  const auto after = ThreadPool::stats();
  EXPECT_GT(after.spin_completions, before.spin_completions);
}

TEST(ForkJoin, ConcurrentCallersSerializeLaunches) {
  // Multiple application threads launching on one pool: regions serialize,
  // every index of every launch executes exactly once.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  constexpr std::int64_t kN = 256;
  std::vector<std::atomic<std::int64_t>> sums(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        pool.parallel_for(0, kN, 7, [&](std::int64_t i) {
          sums[static_cast<std::size_t>(c)].fetch_add(i, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[static_cast<std::size_t>(c)].load(), kRounds * (kN - 1) * kN / 2);
  }
}

TEST(ForkJoin, EnvKnobsAreHardened) {
  // Garbage APOLLO_SPIN_US / APOLLO_NUM_THREADS warn and keep the defaults
  // (hardened env parsing), instead of strtol quietly yielding 0 threads.
  setenv("APOLLO_SPIN_US", "fast-please", 1);
  setenv("APOLLO_NUM_THREADS", "-3", 1);
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.spin_us(), 50);  // documented default
  unsetenv("APOLLO_SPIN_US");
  unsetenv("APOLLO_NUM_THREADS");
}

TEST(ForkJoin, EnvSpinBudgetIsRead) {
  setenv("APOLLO_SPIN_US", "125", 1);
  ThreadPool pool(2);
  EXPECT_EQ(pool.spin_us(), 125);
  unsetenv("APOLLO_SPIN_US");
}

// --- Async background-job lane (the online Retrainer's substrate) ---------

TEST(ThreadPoolAsync, JobsRunFifoAndIdleWaits) {
  ThreadPool pool(1);
  std::mutex mutex;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&, i] {
      std::lock_guard lock(mutex);
      order.push_back(i);
    });
  }
  pool.wait_async_idle();
  EXPECT_EQ(pool.async_pending(), 0u);
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolAsync, ThrowingJobIsCountedNotFatal) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("boom"); });
  pool.submit([&] { ran.fetch_add(1); });
  pool.wait_async_idle();
  EXPECT_EQ(pool.async_failures(), 1u);
  EXPECT_EQ(ran.load(), 1);  // the lane survives a throwing job
}

TEST(ThreadPoolAsync, ConcurrentSubmittersAllComplete) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 25; ++i) pool.submit([&] { completed.fetch_add(1); });
    });
  }
  for (auto& s : submitters) s.join();
  pool.wait_async_idle();
  EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPoolAsync, AsyncLaneDoesNotBlockParallelFor) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  pool.submit([&] {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  // A long-running background job must not stall a parallel region.
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(0, 100, 0, [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
  release.store(true, std::memory_order_release);
  pool.wait_async_idle();
}

TEST(ThreadPoolAsync, BackgroundPriorityDropIsAvailable) {
  ThreadPool pool(1);
  std::atomic<bool> lowered{false};
  pool.submit([&] { lowered.store(apollo::par::lower_current_thread_priority()); });
  pool.wait_async_idle();
#ifdef __linux__
  // Lowering (never raising) priority needs no privilege on Linux.
  EXPECT_TRUE(lowered.load());
#else
  (void)lowered;
#endif
}
