# Empty dependencies file for apollo_instr.
# This may be replaced when dependencies are built.
