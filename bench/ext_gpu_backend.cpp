// Extension: three-way backend selection (seq / omp / gpu). The paper's
// conclusion points at broader backend coverage; because policy labels are
// opaque strings through the whole recorder->trainer->tree pipeline, adding
// a GPU variant requires zero changes to the tuning machinery. This bench
// augments a real LULESH recording with modeled GPU samples, trains the
// three-class model, and shows the two learned crossovers.

#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "core/features.hpp"
#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"
#include "sim/gpu.hpp"

using namespace apollo;

namespace {

/// Rebuild the CostQuery for a recorded sample from its own features.
sim::CostQuery query_from_record(const perf::SampleRecord& record) {
  sim::CostQuery query;
  query.num_indices = record.at(features::kNumIndices).as_int();
  query.num_segments = record.at(features::kNumSegments).as_int();
  for (std::size_t m = 0; m < instr::kMnemonicCount; ++m) {
    const auto mnemonic = static_cast<instr::Mnemonic>(m);
    if (auto it = record.find(instr::mnemonic_name(mnemonic)); it != record.end()) {
      query.mix.set(mnemonic, it->second.as_int());
    }
  }
  const auto sig =
      instr::SignatureRegistry::instance().lookup(record.at(features::kLoopId).as_string());
  if (sig) query.bytes_per_iteration = sig->bytes_per_iteration;
  return query;
}

}  // namespace

int main() {
  bench::print_heading("Three-backend tuning (seq / omp / gpu)",
                       "extension: the conclusion's broader-backend direction");

  Runtime::instance().reset();
  auto app = apps::make_lulesh();
  std::vector<perf::SampleRecord> records;
  for (int size : {14, 34, 64, 100}) {
    auto part = bench::record_problem(*app, "sedov", size, 4, /*with_chunks=*/false);
    records.insert(records.end(), part.begin(), part.end());
  }

  // Price every recorded launch on the modeled GPU and append "gpu" samples.
  const sim::GpuModel gpu;
  std::vector<perf::SampleRecord> augmented = records;
  std::uint64_t sample_id = 1u << 20;
  for (const auto& record : records) {
    if (record.at(features::kParamPolicy).as_string() != "seq") continue;  // one per launch
    perf::SampleRecord gpu_record = record;
    gpu_record[features::kParamPolicy] = "gpu";
    gpu_record[features::kMeasureRuntime] =
        gpu.measured_seconds(query_from_record(record), sample_id++);
    augmented.push_back(std::move(gpu_record));
  }

  const LabeledData data = Trainer::build_labeled_data(augmented, TunedParameter::Policy);
  std::map<std::string, std::int64_t> wins;
  for (std::size_t r = 0; r < data.dataset.num_rows(); ++r) {
    wins[data.dataset.label_names()[static_cast<std::size_t>(data.dataset.label(r))]] +=
        data.row_counts[r];
  }
  std::printf("per-launch winners: ");
  for (const auto& [label, count] : wins) std::printf(" %s=%lld", label.c_str(),
                                                      static_cast<long long>(count));
  std::printf("\n\n");

  const auto cv = ml::cross_validate(bench::subsample(data.dataset, 10000, 7),
                                     ml::TreeParams{}, 10, 42);
  std::printf("3-class model 10-fold accuracy: %.1f%%\n\n", cv.mean_accuracy * 100);

  // Show the regimes with a compact size-only tree.
  ml::TreeParams shallow;
  shallow.max_depth = 3;
  const ml::DecisionTree tree =
      ml::DecisionTree::fit(data.dataset.select_features({"num_indices"}), shallow);
  std::printf("size-only decision boundaries:\n%s\n", tree.to_text().c_str());

  std::printf("Shape: three regimes — tiny launches sequential, medium OpenMP, wide GPU —\n"
              "learned by the unchanged pipeline from string-labeled policy samples.\n");
  return 0;
}
