#include "online/retrainer.hpp"

#include <chrono>
#include <utility>

#include "parallel/thread_priority.hpp"

namespace apollo::online {

Retrainer::Retrainer(ml::TreeParams params) : params_(params) {
  // Training must not compete with the application for CPU on small
  // machines: drop the lane to the weakest normal priority before it
  // accepts any retrain. Submitted first, so it runs before any job.
  pool_.submit([] { par::lower_current_thread_priority(); });
}

Retrainer::~Retrainer() { wait_idle(); }

bool Retrainer::request(std::vector<SampleBuffer::SharedSample> samples) {
  if (samples.empty()) return false;
  if (busy_.exchange(true, std::memory_order_acq_rel)) return false;
  pool_.submit([this, samples = std::move(samples)]() mutable {
    // Materialize here, off the application thread: building the attribute
    // maps is the expensive part of handing samples to the Trainer.
    std::vector<perf::SampleRecord> records;
    records.reserve(samples.size());
    for (const auto& sample : samples) records.push_back(sample->materialize());
    samples.clear();
    run(std::move(records));
  });
  return true;
}

bool Retrainer::request(std::vector<perf::SampleRecord> samples) {
  if (samples.empty()) return false;
  if (busy_.exchange(true, std::memory_order_acq_rel)) return false;
  pool_.submit([this, samples = std::move(samples)]() mutable { run(std::move(samples)); });
  return true;
}

void Retrainer::run(std::vector<perf::SampleRecord> samples) {
  const auto started = std::chrono::steady_clock::now();
  Result result;
  try {
    result.policy = Trainer::train(samples, TunedParameter::Policy, params_);
    if (train_chunk_) {
      try {
        result.chunk = Trainer::train(samples, TunedParameter::ChunkSize, params_);
      } catch (const std::exception&) {
        // No usable chunk sweep data in this window; keep the policy model.
      }
    }
    if (train_threads_) {
      try {
        result.threads = Trainer::train(samples, TunedParameter::Threads, params_);
      } catch (const std::exception&) {
      }
    }
    if (publisher_) publisher_(std::move(result));
    completed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& error) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(error_mutex_);
    last_error_ = error.what();
  }
  last_duration_.store(std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                           .count(),
                       std::memory_order_relaxed);
  busy_.store(false, std::memory_order_release);
}

std::string Retrainer::last_error() const {
  std::lock_guard lock(error_mutex_);
  return last_error_;
}

void Retrainer::wait_idle() { pool_.wait_async_idle(); }

}  // namespace apollo::online
