# Empty dependencies file for table3_cross_application.
# This may be replaced when dependencies are built.
