#include "core/search_options.hpp"

#include "telemetry/env.hpp"

namespace apollo {

const char* search_mode_name(SearchMode mode) noexcept {
  switch (mode) {
    case SearchMode::Exhaustive: return "exhaustive";
    case SearchMode::TwoStage: return "twostage";
  }
  return "?";
}

SearchOptions search_options_from_env() {
  SearchOptions options;
  const std::string mode =
      telemetry::env_choice("APOLLO_SEARCH", "exhaustive", {"exhaustive", "twostage"});
  options.mode = mode == "twostage" ? SearchMode::TwoStage : SearchMode::Exhaustive;
  // Budget 0 means "use the fraction"; min_value 0 keeps that spelling legal.
  options.budget = telemetry::env_size("APOLLO_SEARCH_BUDGET", options.budget, 0);
  options.seed_k = telemetry::env_size("APOLLO_SEARCH_SEED_K", options.seed_k, 1);
  options.generations = telemetry::env_size("APOLLO_SEARCH_GENERATIONS", options.generations, 0);
  return options;
}

}  // namespace apollo
