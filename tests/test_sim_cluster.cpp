// Unit tests for the bulk-synchronous cluster model and its load balancer.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "sim/cluster.hpp"

using apollo::sim::ClusterConfig;
using apollo::sim::ClusterModel;

TEST(ClusterModel, RanksForCores) {
  const ClusterModel m;
  EXPECT_EQ(m.ranks_for_cores(16), 1u);
  EXPECT_EQ(m.ranks_for_cores(8), 1u);
  EXPECT_EQ(m.ranks_for_cores(32), 2u);
  EXPECT_EQ(m.ranks_for_cores(256), 16u);
}

TEST(ClusterModel, StepIsMaxPlusCollective) {
  ClusterConfig cfg;
  cfg.halo_per_patch_us = 0.0;
  const ClusterModel m(cfg);
  const double step = m.step_seconds({1.0, 3.0, 2.0}, {0, 0, 0});
  const double collective =
      (cfg.collective_base_us + cfg.collective_per_hop_us * std::log2(3.0)) * 1e-6;
  EXPECT_NEAR(step, 3.0 + collective, 1e-12);
}

TEST(ClusterModel, HaloCostPerPatch) {
  ClusterConfig cfg;
  const ClusterModel m(cfg);
  const double none = m.step_seconds({1.0}, {0});
  const double ten = m.step_seconds({1.0}, {10});
  EXPECT_NEAR(ten - none, 10 * cfg.halo_per_patch_us * 1e-6, 1e-12);
}

TEST(ClusterModel, CollectiveGrowsWithRanks) {
  const ClusterModel m;
  const double two = m.step_seconds({1.0, 1.0}, {0, 0});
  const double sixteen = m.step_seconds(std::vector<double>(16, 1.0),
                                        std::vector<std::size_t>(16, 0));
  EXPECT_GT(sixteen, two);
}

TEST(ClusterModel, MismatchedVectorsThrow) {
  const ClusterModel m;
  EXPECT_THROW((void)m.step_seconds({1.0, 2.0}, {0}), std::invalid_argument);
}

TEST(ClusterModel, EmptyStepIsZero) {
  const ClusterModel m;
  EXPECT_DOUBLE_EQ(m.step_seconds({}, {}), 0.0);
}

TEST(Decompose, SingleRankGetsEverything) {
  const auto a = ClusterModel::decompose({1.0, 2.0, 3.0}, 1);
  EXPECT_EQ(a, (std::vector<unsigned>{0, 0, 0}));
}

TEST(Decompose, ZeroRanksThrows) {
  EXPECT_THROW((void)ClusterModel::decompose({1.0}, 0), std::invalid_argument);
}

TEST(Decompose, AllItemsAssignedWithinRange) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.1, 10.0);
  std::vector<double> weights(200);
  for (auto& w : weights) w = dist(rng);
  const auto assignment = ClusterModel::decompose(weights, 8);
  ASSERT_EQ(assignment.size(), weights.size());
  for (unsigned rank : assignment) EXPECT_LT(rank, 8u);
}

TEST(Decompose, BalancesLoadReasonably) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(0.5, 3.0);
  std::vector<double> weights(160);
  for (auto& w : weights) w = dist(rng);
  const unsigned ranks = 8;
  const auto assignment = ClusterModel::decompose(weights, ranks);
  std::vector<double> load(ranks, 0.0);
  for (std::size_t i = 0; i < weights.size(); ++i) load[assignment[i]] += weights[i];
  const double lo = *std::min_element(load.begin(), load.end());
  const double hi = *std::max_element(load.begin(), load.end());
  EXPECT_LT(hi / lo, 1.25);  // LPT is near-optimal for many small items
}

TEST(Decompose, HeaviestItemsSeparated) {
  // Two huge items among crumbs must land on different ranks.
  std::vector<double> weights{100.0, 100.0, 1.0, 1.0, 1.0, 1.0};
  const auto assignment = ClusterModel::decompose(weights, 2);
  EXPECT_NE(assignment[0], assignment[1]);
}

TEST(Decompose, MoreRanksThanItems) {
  const auto assignment = ClusterModel::decompose({5.0, 3.0}, 8);
  EXPECT_NE(assignment[0], assignment[1]);
}

TEST(Decompose, DeterministicForSameInput) {
  const std::vector<double> weights{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  EXPECT_EQ(ClusterModel::decompose(weights, 3), ClusterModel::decompose(weights, 3));
}
