// SII-D microbenchmark: template-specialized forall vs a shared generic
// execution function. The paper measured ~30% slowdown for LULESH when all
// kernels shared one type-erased OpenMP execution function; policySwitcher
// exists precisely to keep static specialization under dynamic selection.
//
// Also compares the full apollo::forall hooks in Tune vs Adapt mode on the
// same kernel body: the adaptation loop (exploration draw, drift bookkeeping,
// strided sampling, retrains in flight on the background thread) must stay
// within a few percent of plain tuned dispatch.

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "core/runtime.hpp"
#include "core/trainer.hpp"
#include "raja/forall.hpp"
#include "raja/policy_switcher.hpp"

namespace {

constexpr std::int64_t kN = 4096;

std::vector<double>& buffers() {
  static std::vector<double> data(kN * 3, 1.5);
  return data;
}

// The kernel body: a small streaming saxpy-like update.
inline void body_at(double* a, const double* b, const double* c, raja::Index i) {
  a[i] = b[i] * 1.0001 + c[i] * 0.9999;
}

void TemplateSpecialized(benchmark::State& state) {
  auto& data = buffers();
  double* a = data.data();
  const double* b = data.data() + kN;
  const double* c = data.data() + 2 * kN;
  for (auto _ : state) {
    raja::forall<raja::seq_exec>(0, kN, [=](raja::Index i) { body_at(a, b, c, i); });
    benchmark::DoNotOptimize(a[0]);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(TemplateSpecialized);

void PolicySwitcherDispatch(benchmark::State& state) {
  // Runtime policy value, statically re-dispatched: the Apollo approach.
  auto& data = buffers();
  double* a = data.data();
  const double* b = data.data() + kN;
  const double* c = data.data() + 2 * kN;
  const auto policy = raja::PolicyType::seq_segit_seq_exec;
  for (auto _ : state) {
    raja::apollo::policySwitcher(policy, 0, [=](auto exec) {
      if constexpr (std::is_same_v<decltype(exec), raja::seq_exec>) {
        raja::forall<raja::seq_exec>(0, kN, [=](raja::Index i) { body_at(a, b, c, i); });
      }
    });
    benchmark::DoNotOptimize(a[0]);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(PolicySwitcherDispatch);

void GenericExecutionFunction(benchmark::State& state) {
  // One shared type-erased execution function for every kernel: the design
  // the paper rejects. The body crosses a std::function boundary per index.
  auto& data = buffers();
  double* a = data.data();
  const double* b = data.data() + kN;
  const double* c = data.data() + 2 * kN;
  const auto generic_exec = [](std::int64_t n, const std::function<void(raja::Index)>& body) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
  };
  const std::function<void(raja::Index)> body = [=](raja::Index i) { body_at(a, b, c, i); };
  for (auto _ : state) {
    generic_exec(kN, body);
    benchmark::DoNotOptimize(a[0]);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(GenericExecutionFunction);

const apollo::KernelHandle& micro_kernel() {
  static const apollo::KernelHandle k{"micro:saxpy", "MicroSaxpy",
                                      apollo::instr::MixBuilder{}.fp(2).load(2).store(1).build(),
                                      24};
  return k;
}

const apollo::TunerModel& micro_model() {
  static const apollo::TunerModel model = [] {
    auto& rt = apollo::Runtime::instance();
    rt.reset();
    rt.set_execute_selected(false);
    rt.set_mode(apollo::Mode::Record);
    apollo::TrainingConfig training;
    training.chunk_values.clear();
    rt.set_training_config(training);
    for (int step = 0; step < 8; ++step) {
      apollo::forall(micro_kernel(), raja::IndexSet::range(0, kN), [](raja::Index) {});
    }
    auto trained = apollo::Trainer::train(rt.records(), apollo::TunedParameter::Policy);
    rt.reset();
    return trained;
  }();
  return model;
}

void run_forall_loop(benchmark::State& state) {
  auto& data = buffers();
  double* a = data.data();
  const double* b = data.data() + kN;
  const double* c = data.data() + 2 * kN;
  const raja::IndexSet iset = raja::IndexSet::range(0, kN);
  for (auto _ : state) {
    apollo::forall(micro_kernel(), iset, [=](raja::Index i) { body_at(a, b, c, i); });
    benchmark::DoNotOptimize(a[0]);
  }
  state.SetItemsProcessed(state.iterations() * kN);
}

void ApolloForallTune(benchmark::State& state) {
  // The full decision path as shipped: per-site inline cache in front of the
  // compiled flat table. Iteration-stable launches hit the cache.
  const auto& model = micro_model();
  auto& rt = apollo::Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(apollo::Mode::Tune);
  rt.set_policy_model(model);
  run_forall_loop(state);
  rt.reset();
}
BENCHMARK(ApolloForallTune);

void ApolloForallTunePointer(benchmark::State& state) {
  // Pre-refactor baseline: every launch walks the pointer-linked tree, no
  // inline cache. The CI gate asserts the full path above stays at or below
  // this cost.
  const auto& model = micro_model();
  auto& rt = apollo::Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(apollo::Mode::Tune);
  rt.set_policy_model(model);
  rt.set_inline_cache_enabled(false);
  rt.set_flat_eval_enabled(false);
  run_forall_loop(state);
  rt.reset();
}
BENCHMARK(ApolloForallTunePointer);

void ApolloForallTuneFlat(benchmark::State& state) {
  // Flat-table evaluation per launch with the inline cache off: isolates the
  // branchless-table win from the cache win.
  const auto& model = micro_model();
  auto& rt = apollo::Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(apollo::Mode::Tune);
  rt.set_policy_model(model);
  rt.set_inline_cache_enabled(false);
  run_forall_loop(state);
  rt.reset();
}
BENCHMARK(ApolloForallTuneFlat);

void ApolloForallGroupedTune(benchmark::State& state) {
  // Grouped dispatch over a heterogeneous IndexSet: 8 segments, 2 plan
  // groups, so 2 decisions instead of 8 per time step.
  const auto& model = micro_model();
  auto& rt = apollo::Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(apollo::Mode::Tune);
  rt.set_policy_model(model);
  auto& data = buffers();
  double* a = data.data();
  const double* b = data.data() + kN;
  const double* c = data.data() + 2 * kN;
  raja::IndexSet iset;
  for (int s = 0; s < 7; ++s) {
    iset.push_back(raja::RangeSegment{s * (kN / 8), (s + 1) * (kN / 8)});
  }
  iset.push_back(raja::StridedSegment{0, kN / 8, 2});
  for (auto _ : state) {
    apollo::forall_grouped(micro_kernel(), iset, [=](raja::Index i) { body_at(a, b, c, i); });
    benchmark::DoNotOptimize(a[0]);
  }
  state.SetItemsProcessed(state.iterations() * iset.getLength());
  rt.reset();
}
BENCHMARK(ApolloForallGroupedTune);

void ApolloForallAdapt(benchmark::State& state) {
  // Adapt mode with retrains continually kicked off by cadence, so the
  // measured hot path includes version polling, the exploration draw, drift
  // bookkeeping, strided sampling, and background training in flight.
  const auto& model = micro_model();
  auto& rt = apollo::Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(apollo::Mode::Adapt);
  rt.sample_buffer().set_capacity(4096);
  apollo::online::OnlineConfig config;
  config.retrain_every = 512;
  config.min_retrain_samples = 64;
  rt.configure_online(config);
  rt.set_policy_model(model);
  run_forall_loop(state);
  state.counters["retrains"] =
      static_cast<double>(rt.online().status().retrains_completed);
  rt.reset();
}
BENCHMARK(ApolloForallAdapt);

}  // namespace

BENCHMARK_MAIN();
