// Unit tests for TunerModel: categorical encoding, resolver-driven
// prediction, and file round-trips (the retrain-without-recompile property).

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/tuner_model.hpp"
#include "ml/decision_tree.hpp"

using apollo::TunedParameter;
using apollo::TunerModel;
using apollo::ml::Dataset;
using apollo::ml::DecisionTree;
using apollo::ml::TreeParams;
using apollo::perf::Value;

namespace {

/// problem "small" -> seq, "big" -> omp (a purely categorical decision).
TunerModel categorical_model() {
  Dataset d({"num_indices", "problem_name"}, {"omp", "seq"});
  for (int i = 0; i < 50; ++i) {
    d.add_row({100.0, 1.0}, 1);  // problem_name code 1 = "small" -> seq
    d.add_row({100.0, 0.0}, 0);  // problem_name code 0 = "big" -> omp
  }
  TreeParams p;
  p.min_samples_leaf = 1;
  DecisionTree tree = DecisionTree::fit(d, p);
  return TunerModel(TunedParameter::Policy, std::move(tree),
                    {{"problem_name", {"big", "small"}}});
}

}  // namespace

TEST(TunerModel, ParameterNames) {
  EXPECT_STREQ(apollo::tuned_parameter_name(TunedParameter::Policy), "policy");
  EXPECT_STREQ(apollo::tuned_parameter_name(TunedParameter::ChunkSize), "chunk_size");
}

TEST(TunerModel, EncodeNumericPassThrough) {
  const TunerModel model = categorical_model();
  EXPECT_DOUBLE_EQ(model.encode("num_indices", Value(std::int64_t{42})), 42.0);
  EXPECT_DOUBLE_EQ(model.encode("num_indices", Value(1.5)), 1.5);
}

TEST(TunerModel, EncodeCategorical) {
  const TunerModel model = categorical_model();
  EXPECT_DOUBLE_EQ(model.encode("problem_name", Value("big")), 0.0);
  EXPECT_DOUBLE_EQ(model.encode("problem_name", Value("small")), 1.0);
}

TEST(TunerModel, EncodeUnseenOrMissingIsMinusOne) {
  const TunerModel model = categorical_model();
  EXPECT_DOUBLE_EQ(model.encode("problem_name", Value("never-seen")), -1.0);
  EXPECT_DOUBLE_EQ(model.encode("problem_name", std::nullopt), -1.0);
  EXPECT_DOUBLE_EQ(model.encode("no_dictionary", Value("text")), -1.0);
}

TEST(TunerModel, PredictViaResolver) {
  const TunerModel model = categorical_model();
  const auto resolver_for = [](const std::string& problem) {
    return [problem](const std::string& name) -> std::optional<Value> {
      if (name == "num_indices") return Value(std::int64_t{100});
      if (name == "problem_name") return Value(problem);
      return std::nullopt;
    };
  };
  const int small = model.predict(resolver_for("small"));
  const int big = model.predict(resolver_for("big"));
  EXPECT_EQ(model.label_name(small), "seq");
  EXPECT_EQ(model.label_name(big), "omp");
}

TEST(TunerModel, SaveLoadRoundTrip) {
  const TunerModel model = categorical_model();
  std::stringstream stream;
  model.save(stream);
  const TunerModel back = TunerModel::load(stream);
  EXPECT_EQ(back.parameter(), TunedParameter::Policy);
  EXPECT_EQ(back.dictionaries(), model.dictionaries());
  EXPECT_EQ(back.tree().node_count(), model.tree().node_count());
  const auto resolve = [](const std::string& name) -> std::optional<Value> {
    if (name == "num_indices") return Value(std::int64_t{100});
    if (name == "problem_name") return Value("small");
    return std::nullopt;
  };
  EXPECT_EQ(back.predict(resolve), model.predict(resolve));
}

TEST(TunerModel, FileRoundTrip) {
  const TunerModel model = categorical_model();
  const std::string path =
      (std::filesystem::temp_directory_path() / "apollo_model_test.model").string();
  model.save_file(path);
  const TunerModel back = TunerModel::load_file(path);
  EXPECT_EQ(back.num_labels(), 2u);
  std::filesystem::remove(path);
}

TEST(TunerModel, LoadRejectsGarbage) {
  std::stringstream bad("garbage 9\n");
  EXPECT_THROW((void)TunerModel::load(bad), std::runtime_error);
}

TEST(TunerModel, LabelNameBoundsChecked) {
  const TunerModel model = categorical_model();
  EXPECT_THROW((void)model.label_name(99), std::out_of_range);
}

// --- Malformed-file hardening (files are data, not trusted input) ----------

namespace {

/// A syntactically valid single-leaf model file to mutate from.
std::string valid_model_text() {
  return "apollo-model 1\n"
         "parameter policy\n"
         "dicts 0\n"
         "apollo-tree 1\n"
         "features 1 num_indices\n"
         "labels 2 omp seq\n"
         "nodes 1\n"
         "-1 0 -1 -1 0 10 0\n";
}

std::string load_error(const std::string& text) {
  std::istringstream in(text);
  try {
    (void)TunerModel::load(in);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return "";
}

}  // namespace

TEST(TunerModelHardening, ValidMinimalFileLoads) {
  std::istringstream in(valid_model_text());
  const TunerModel model = TunerModel::load(in);
  EXPECT_EQ(model.parameter(), TunedParameter::Policy);
}

TEST(TunerModelHardening, UnknownParameterTagThrowsDescriptively) {
  std::string text = valid_model_text();
  text.replace(text.find("parameter policy"), 16, "parameter bogus!");
  EXPECT_NE(load_error(text).find("unknown parameter tag 'bogus!'"), std::string::npos);
}

TEST(TunerModelHardening, NegativeAndHugeDictCountsRejected) {
  std::string text = valid_model_text();
  text.replace(text.find("dicts 0"), 7, "dicts -3");
  EXPECT_NE(load_error(text).find("invalid dict count"), std::string::npos);

  text = valid_model_text();
  text.replace(text.find("dicts 0"), 7, "dicts 99999999");
  EXPECT_NE(load_error(text).find("invalid dict count"), std::string::npos);
}

TEST(TunerModelHardening, TruncatedDictsRejected) {
  std::string text = valid_model_text();
  text.replace(text.find("dicts 0"), 7, "dicts 5");
  // Fewer dict lines than promised: the tree header is eaten as a dict line
  // and the stream ends early.
  EXPECT_FALSE(load_error(text).empty());
}

TEST(TreeHardening, NegativeOrHugeCountsRejected) {
  EXPECT_NE(load_error("apollo-model 1\nparameter policy\ndicts 0\n"
                       "apollo-tree 1\nfeatures -1 x\n")
                .find("invalid"),
            std::string::npos);
  EXPECT_NE(load_error("apollo-model 1\nparameter policy\ndicts 0\n"
                       "apollo-tree 1\nfeatures 1 x\nlabels 999999999 a\n")
                .find("invalid"),
            std::string::npos);
}

TEST(TreeHardening, EmptyTreeRejected) {
  std::string text = valid_model_text();
  text.replace(text.find("nodes 1\n-1 0 -1 -1 0 10 0\n"), 26, "nodes 0\n");
  EXPECT_NE(load_error(text).find("empty tree"), std::string::npos);
}

TEST(TreeHardening, TruncatedNodeTableRejected) {
  std::string text = valid_model_text();
  text.replace(text.find("nodes 1"), 7, "nodes 3");
  EXPECT_NE(load_error(text).find("truncated node table"), std::string::npos);
}

TEST(TreeHardening, LeafLabelOutOfRangeRejected) {
  std::string text = valid_model_text();
  text.replace(text.find("-1 0 -1 -1 0 10 0"), 17, "-1 0 -1 -1 7 10 0");
  EXPECT_NE(load_error(text).find("leaf label out of range"), std::string::npos);
}

TEST(TreeHardening, SplitFeatureOutOfRangeRejected) {
  std::string text = valid_model_text();
  text.replace(text.find("nodes 1\n-1 0 -1 -1 0 10 0\n"), 26,
               "nodes 3\n5 1.5 1 2 -1 10 0\n-1 0 -1 -1 0 5 0\n-1 0 -1 -1 1 5 0\n");
  EXPECT_NE(load_error(text).find("split feature out of range"), std::string::npos);
}

TEST(TreeHardening, ChildIndexOutOfRangeRejected) {
  std::string text = valid_model_text();
  text.replace(text.find("nodes 1\n-1 0 -1 -1 0 10 0\n"), 26,
               "nodes 3\n0 1.5 1 9 -1 10 0\n-1 0 -1 -1 0 5 0\n-1 0 -1 -1 1 5 0\n");
  EXPECT_NE(load_error(text).find("child index out of range"), std::string::npos);
}

TEST(TreeHardening, BackwardChildEdgeRejectedAsCycle) {
  // Node 1 points back at node 0: following it would loop forever.
  std::string text = valid_model_text();
  text.replace(text.find("nodes 1\n-1 0 -1 -1 0 10 0\n"), 26,
               "nodes 3\n0 1.5 1 2 -1 10 0\n0 0.5 0 2 -1 5 0\n-1 0 -1 -1 1 5 0\n");
  EXPECT_NE(load_error(text).find("does not point forward"), std::string::npos);
}
