#include "service/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "core/features.hpp"
#include "core/trainer.hpp"
#include "core/tuner_model.hpp"
#include "parallel/thread_priority.hpp"
#include "telemetry/telemetry.hpp"

namespace apollo::service {

namespace {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string model_text(const TunerModel& model) {
  std::ostringstream out;
  model.save(out);
  return out.str();
}

void bump_daemon_counter(const char* name, const char* help, const char* labels = "") {
  if (!telemetry::enabled()) return;
  telemetry::MetricsRegistry::instance().counter(name, help, labels).inc();
}

}  // namespace

TrainerDaemon::TrainerDaemon(DaemonConfig config)
    : config_(std::move(config)), fleet_(config_.fleet) {
  if (config_.train_batch == 0) config_.train_batch = 1;
  if (config_.per_kernel_cap == 0) config_.per_kernel_cap = 1;
}

TrainerDaemon::~TrainerDaemon() { stop(); }

bool TrainerDaemon::start() {
  if (running_) return true;
  std::string error;
  listen_fd_ = listen_unix(config_.socket_path, 16, &error);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "apollo_served: %s\n", error.c_str());
    return false;
  }
  stopping_ = false;
  running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  trainer_thread_ = std::thread([this] { trainer_loop(); });
  return true;
}

void TrainerDaemon::stop() {
  if (!running_) return;
  int listen_fd = -1;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    listen_fd = listen_fd_;
    // shutdown(), not close(): close() from this thread would neither wake a
    // thread blocked in accept()/read() nor be safe against fd reuse. After
    // shutdown every blocked call fails out and each thread closes its own fd.
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    for (auto& connection : connections_) connection->conn.shutdown_now();
  }
  train_cv_.notify_all();
  generation_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (trainer_thread_.joinable()) trainer_thread_.join();
  for (auto& thread : serve_threads_) {
    if (thread.joinable()) thread.join();
  }
  serve_threads_.clear();
  connections_.clear();
  close_fd(listen_fd);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
  // Final export so a short-lived daemon still leaves a coherent fleet file.
  if (config_.fleet.enabled()) fleet_.export_now(generation(), monotonic_ns());
  running_ = false;
}

TrainerDaemon::Stats TrainerDaemon::stats() const {
  Stats out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out = stats_;
    out.generation = generation_;
    out.clients_connected = connections_.size();
    out.per_kernel_samples.clear();
    for (const auto& [loop_id, shard] : shards_) out.per_kernel_samples[loop_id] = shard.size();
  }
  // Fleet counters live behind the fleet's own mutex; taken after mutex_ is
  // released so the two locks never nest in this direction.
  out.telemetry_snapshots = fleet_.telemetry_snapshots();
  out.slo_breaches = fleet_.slo_breaches();
  return out;
}

std::vector<LineageEntry> TrainerDaemon::lineage(std::uint64_t generation) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = lineage_by_generation_.find(generation);
  return it == lineage_by_generation_.end() ? std::vector<LineageEntry>{} : it->second;
}

std::uint64_t TrainerDaemon::generation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return generation_;
}

bool TrainerDaemon::wait_generation(std::uint64_t at_least, double timeout_s) {
  std::unique_lock<std::mutex> lock(mutex_);
  return generation_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), [&] {
    return generation_ >= at_least || stopping_;
  }) && generation_ >= at_least;
}

StatsFrame TrainerDaemon::stats_frame() const {
  const Stats s = stats();
  StatsFrame frame;
  frame.clients_connected = s.clients_connected;
  frame.clients_total = s.clients_total;
  frame.batches_received = s.batches_received;
  frame.samples_received = s.samples_received;
  frame.frames_rejected = s.frames_rejected;
  frame.trains_completed = s.trains_completed;
  frame.generation = s.generation;
  frame.per_kernel_samples = s.per_kernel_samples;
  return frame;
}

void TrainerDaemon::accept_loop() {
  std::uint64_t next_id = 1;
  for (;;) {
    int listen_fd;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = accept_unix(listen_fd);
    if (fd < 0) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      continue;
    }
    auto connection = std::make_shared<Connection>();
    connection->conn = FrameConn(fd);
    connection->id = next_id++;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;  // fd closed by ~Connection
      connections_.push_back(connection);
      stats_.clients_total += 1;
      serve_threads_.emplace_back([this, connection] { serve(connection); });
    }
    bump_daemon_counter("apollo_served_clients_total", "Client connections accepted.");
  }
}

void TrainerDaemon::serve(std::shared_ptr<Connection> connection) {
  FrameConn& conn = connection->conn;
  std::string drop_cause = "peer closed";
  for (;;) {
    auto frame = conn.recv(-1);
    if (!frame) {
      // Violations at the transport layer — bad CRC, unknown type, an
      // oversized length, a stream cut mid-frame — already closed the
      // connection inside recv; count them so the stats distinguish hostile
      // peers from clean disconnects. A plain EOF ("peer closed") or a reset
      // from a client that died between frames is peer death, not protocol.
      const std::string& reason = conn.last_error();
      if (!reason.empty()) drop_cause = reason;
      const bool peer_death = reason.empty() || reason == "peer closed" ||
                              reason.find("Connection reset") != std::string::npos;
      if (!peer_death) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          stats_.frames_rejected += 1;
        }
        bump_daemon_counter("apollo_served_frames_rejected_total",
                            "Frames rejected as malformed or out of protocol.");
        std::fprintf(stderr, "apollo_served: client %llu dropped: %s\n",
                     static_cast<unsigned long long>(connection->id),
                     conn.last_error().c_str());
      }
      break;
    }
    const auto& [type, payload] = *frame;
    try {
      switch (type) {
        case FrameType::Hello: {
          const HelloFrame hello = decode_hello(payload);
          if (hello.protocol != kProtocolVersion) {
            // A client from the future (or past): refuse cleanly rather
            // than misparse its frames. HELLO's layout is frozen across
            // protocol versions precisely so this path is a nack, not a
            // decode error; the ack leads with our protocol so the client
            // can report the skew.
            AckFrame nack;
            nack.batch_seq = 0;
            nack.generation = 0;
            nack.samples_accepted = 0;
            conn.send(FrameType::Ack, encode_ack(nack));
            fleet_.hello_nacked(connection->id, hello.protocol, monotonic_ns());
            throw WireError("protocol skew: client " + std::to_string(hello.protocol) +
                            ", daemon " + std::to_string(kProtocolVersion));
          }
          connection->helloed = true;
          connection->client_name = hello.client_name;
          AckFrame ack;
          ack.generation = generation();
          ack.client_id = connection->id;
          conn.send(FrameType::Ack, encode_ack(ack));
          fleet_.client_connected(connection->id, hello.client_name, monotonic_ns());
          // A late joiner gets the current model immediately instead of
          // waiting for the next train.
          push_generation(*connection);
          break;
        }
        case FrameType::SampleBatch: {
          if (!connection->helloed) throw WireError("sample batch before hello");
          std::uint64_t seq = 0;
          const std::int64_t accepted = ingest_batch(connection->id, payload, &seq);
          AckFrame ack;
          ack.batch_seq = seq;
          ack.generation = generation();
          ack.samples_accepted = static_cast<std::uint64_t>(accepted);
          ack.client_id = connection->id;
          conn.send(FrameType::Ack, encode_ack(ack));
          train_cv_.notify_one();
          break;
        }
        case FrameType::Telemetry: {
          if (!connection->helloed) throw WireError("telemetry before hello");
          const TelemetryFrame telemetry_frame = decode_telemetry(payload);
          fleet_.telemetry_received(connection->id, telemetry_frame, generation(),
                                    monotonic_ns());
          break;
        }
        case FrameType::Stats: {
          conn.send(FrameType::Stats, encode_stats(stats_frame()));
          break;
        }
        default:
          throw WireError(std::string("unexpected frame from client: ") + frame_type_name(type));
      }
    } catch (const WireError& error) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        stats_.frames_rejected += 1;
      }
      bump_daemon_counter("apollo_served_frames_rejected_total",
                          "Frames rejected as malformed or out of protocol.");
      std::fprintf(stderr, "apollo_served: client %llu dropped: %s\n",
                   static_cast<unsigned long long>(connection->id), error.what());
      drop_cause = error.what();
      conn.close();
      break;
    }
  }
  if (connection->helloed) {
    fleet_.client_disconnected(connection->id, drop_cause, monotonic_ns());
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(std::remove(connections_.begin(), connections_.end(), connection),
                     connections_.end());
}

std::int64_t TrainerDaemon::ingest_batch(std::uint64_t client_id, std::string_view payload,
                                         std::uint64_t* seq) {
  const bool traced = telemetry::enabled();
  const std::uint64_t span_start = traced ? telemetry::now_ns() : 0;
  // Decode (the expensive, throwing part) outside the lock.
  SampleBatch batch = decode_sample_batch(payload);
  *seq = batch.seq;
  std::int64_t accepted = 0;
  std::uint64_t daemon_generation = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& record : batch.records) {
      const auto it = record.find(features::kLoopId);
      if (it == record.end() || !it->second.is_string()) continue;  // unkeyable: drop quietly
      auto& shard = shards_[it->second.as_string()];
      shard.push_back(ShardEntry{std::move(record), client_id, batch.seq});
      ++accepted;
      ++total_samples_;
      if (shard.size() > config_.per_kernel_cap) {
        shard.pop_front();
        --total_samples_;
      }
    }
    stats_.batches_received += 1;
    stats_.samples_received += static_cast<std::uint64_t>(accepted);
    since_last_train_ += static_cast<std::size_t>(accepted);
    daemon_generation = generation_;
  }
  fleet_.batch_received(client_id, batch, static_cast<std::uint64_t>(accepted),
                        daemon_generation, monotonic_ns());
  if (traced) {
    auto& registry = telemetry::MetricsRegistry::instance();
    registry.counter("apollo_served_batches_total", "Sample batches ingested.").inc();
    registry.counter("apollo_served_samples_total", "Samples ingested across batches.")
        .inc(static_cast<std::uint64_t>(accepted));
    // Stitches against the client's batch_ship span via (client id, seq).
    telemetry::emit_span(telemetry::EventKind::BatchIngest, "batch_ingest", span_start,
                         telemetry::now_ns(), client_id, batch.seq);
  }
  return accepted;
}

void TrainerDaemon::push_generation(Connection& connection) {
  std::string payload;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (generation_ == 0) return;
    payload = push_payload_;
  }
  if (connection.conn.send(FrameType::ModelPush, payload)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.pushes_sent += 1;
  }
}

void TrainerDaemon::trainer_loop() {
  par::lower_current_thread_priority();  // training yields to serving threads
  const bool fleet_enabled = config_.fleet.enabled();
  const auto export_interval = std::chrono::milliseconds(
      config_.fleet.export_ms > 0 ? config_.fleet.export_ms : 500);
  for (;;) {
    bool ready = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto predicate = [&] {
        return stopping_ ||
               (since_last_train_ >= config_.train_batch &&
                total_samples_ >= config_.min_train_samples);
      };
      if (fleet_enabled) {
        // Wake on the export cadence even when no training is due, so the
        // fleet metrics file and the staleness SLO stay fresh.
        ready = train_cv_.wait_for(lock, export_interval, predicate);
      } else {
        train_cv_.wait(lock, predicate);
        ready = true;
      }
      if (stopping_) return;
      if (ready) since_last_train_ = 0;
    }
    if (fleet_enabled) fleet_.tick(generation(), monotonic_ns());
    if (ready) train_once();
  }
}

void TrainerDaemon::train_once() {
  const auto started = std::chrono::steady_clock::now();
  const std::uint64_t span_start = telemetry::enabled() ? telemetry::now_ns() : 0;
  // Snapshot the aggregate under the lock, fit outside it. Collect the
  // lineage — which (client, batch seq) pairs the fit will consume — in the
  // same pass so the push can name its provenance exactly.
  std::vector<perf::SampleRecord> records;
  std::map<std::uint64_t, std::vector<std::uint64_t>> seqs_by_client;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    records.reserve(total_samples_);
    for (const auto& [loop_id, shard] : shards_) {
      for (const auto& entry : shard) {
        records.push_back(entry.record);
        seqs_by_client[entry.client_id].push_back(entry.batch_seq);
      }
    }
  }
  if (records.empty()) return;
  std::vector<LineageEntry> lineage;
  lineage.reserve(seqs_by_client.size());
  for (auto& [client_id, seqs] : seqs_by_client) {
    std::sort(seqs.begin(), seqs.end());
    seqs.erase(std::unique(seqs.begin(), seqs.end()), seqs.end());
    lineage.push_back(LineageEntry{client_id, std::move(seqs)});
  }

  ModelPushFrame push;
  push.trained_on_samples = records.size();
  push.lineage = lineage;
  bool ok = true;
  std::string fail_cause;
  try {
    push.policy_text = model_text(Trainer::train(records, TunedParameter::Policy, config_.tree_params));
    if (config_.train_chunk) {
      try {
        push.chunk_text =
            model_text(Trainer::train(records, TunedParameter::ChunkSize, config_.tree_params));
      } catch (const std::exception&) {
        // No usable chunk sweep data in the aggregate; push policy alone.
      }
    }
  } catch (const std::exception& error) {
    ok = false;
    fail_cause = error.what();
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_.trains_failed += 1;
    std::fprintf(stderr, "apollo_served: train failed: %s\n", error.what());
  }

  std::uint64_t trained_generation = 0;
  std::uint64_t pushed = 0;
  if (ok) {
    std::vector<std::shared_ptr<Connection>> targets;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      generation_ += 1;
      trained_generation = generation_;
      push.generation = generation_;
      push.pushed_ns = monotonic_ns();
      push_payload_ = encode_model_push(push);
      stats_.trains_completed += 1;
      lineage_by_generation_[generation_] = lineage;
      while (lineage_by_generation_.size() > kLineageHistory) {
        lineage_by_generation_.erase(lineage_by_generation_.begin());
      }
      for (const auto& connection : connections_) {
        if (connection->helloed) targets.push_back(connection);
      }
    }
    generation_cv_.notify_all();
    for (const auto& connection : targets) {
      // A dead client just fails its send; its serving thread reaps it.
      if (connection->conn.send(FrameType::ModelPush, push_payload_)) ++pushed;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stats_.pushes_sent += pushed;
    }
  }

  const double duration =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
  if (ok) {
    fleet_.generation_trained(trained_generation, records.size(), duration, lineage,
                              monotonic_ns());
    fleet_.push_sent(trained_generation, pushed, monotonic_ns());
  } else {
    fleet_.train_failed(fail_cause, monotonic_ns());
  }
  if (telemetry::enabled()) {
    auto& registry = telemetry::MetricsRegistry::instance();
    registry
        .histogram("apollo_served_train_seconds", "Aggregate-train duration.",
                   telemetry::duration_bounds())
        .observe(duration);
    registry
        .counter("apollo_served_trains_total", "Aggregate trains by outcome.",
                 ok ? "result=\"ok\"" : "result=\"failed\"")
        .inc();
    telemetry::emit_span(telemetry::EventKind::FleetTrain, "fleet_train", span_start,
                         telemetry::now_ns(), trained_generation, records.size());
  }
}

}  // namespace apollo::service
