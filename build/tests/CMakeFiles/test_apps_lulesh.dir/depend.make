# Empty dependencies file for test_apps_lulesh.
# This may be replaced when dependencies are built.
