// Integration tests for the two-stage tuning search inside the runtime:
// hardened APOLLO_SEARCH* env parsing, the Record-mode budgeted sweep (anchor
// guarantees, trainer compatibility, searched-vs-skipped accounting), the
// Retrainer's search augmentation in Adapt mode, and tuned dispatch running
// concurrently with augmented retrains (the TSan lane in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/features.hpp"
#include "core/runtime.hpp"
#include "core/search_options.hpp"
#include "core/trainer.hpp"
#include "telemetry/env.hpp"
#include "telemetry/telemetry.hpp"

using namespace apollo;

namespace {

const KernelHandle& search_kernel() {
  static const KernelHandle k{"test:search", "SearchStream",
                              instr::MixBuilder{}.fp(2).load(2).store(1).build(), 24};
  return k;
}

void launch(std::int64_t size) {
  auto& rt = Runtime::instance();
  const raja::IndexSet iset = raja::IndexSet::range(0, size);
  const ModelParams params = rt.begin(search_kernel(), iset);
  rt.end(search_kernel(), iset, params);
}

SearchOptions twostage(std::size_t budget) {
  SearchOptions options;
  options.mode = SearchMode::TwoStage;
  options.budget = budget;
  options.seed_k = 4;
  options.generations = 2;
  return options;
}

class SearchRuntimeTest : public ::testing::Test {
protected:
  void SetUp() override { Runtime::instance().reset(); }
  void TearDown() override {
    Runtime::instance().reset();
    telemetry::set_enabled(false);
  }
};

}  // namespace

TEST(SearchOptionsEnv, GarbageValuesWarnAndKeepDefaults) {
  // All four knobs route through the hardened telemetry::env parsers:
  // garbage warns on stderr and keeps the documented default, it never
  // silently changes how training sweeps cover the space.
  const char* garbage[] = {"", "abc", "64k", "1e6", "-3", "12 34", "0x1", "TwoStage!"};
  for (const char* value : garbage) {
    setenv("APOLLO_SEARCH", value, 1);
    setenv("APOLLO_SEARCH_BUDGET", value, 1);
    setenv("APOLLO_SEARCH_SEED_K", value, 1);
    setenv("APOLLO_SEARCH_GENERATIONS", value, 1);
    const SearchOptions options = search_options_from_env();
    EXPECT_EQ(options.mode, SearchMode::Exhaustive) << value;
    EXPECT_EQ(options.budget, 0u) << value;
    EXPECT_EQ(options.seed_k, 8u) << value;
    EXPECT_EQ(options.generations, 4u) << value;
  }
  unsetenv("APOLLO_SEARCH");
  unsetenv("APOLLO_SEARCH_BUDGET");
  unsetenv("APOLLO_SEARCH_SEED_K");
  unsetenv("APOLLO_SEARCH_GENERATIONS");
}

TEST(SearchOptionsEnv, ValidValuesParse) {
  setenv("APOLLO_SEARCH", "twostage", 1);
  setenv("APOLLO_SEARCH_BUDGET", "12", 1);
  setenv("APOLLO_SEARCH_SEED_K", "5", 1);
  setenv("APOLLO_SEARCH_GENERATIONS", "2", 1);
  const SearchOptions options = search_options_from_env();
  EXPECT_EQ(options.mode, SearchMode::TwoStage);
  EXPECT_EQ(options.budget, 12u);
  EXPECT_EQ(options.seed_k, 5u);
  EXPECT_EQ(options.generations, 2u);
  unsetenv("APOLLO_SEARCH");
  unsetenv("APOLLO_SEARCH_BUDGET");
  unsetenv("APOLLO_SEARCH_SEED_K");
  unsetenv("APOLLO_SEARCH_GENERATIONS");
}

TEST(SearchOptionsEnv, ChoiceParserKeepsFallbackOnUnknown) {
  setenv("APOLLO_TEST_CHOICE", "exhaustive", 1);
  EXPECT_EQ(telemetry::env_choice("APOLLO_TEST_CHOICE", "twostage",
                                  {"exhaustive", "twostage"}),
            "exhaustive");
  setenv("APOLLO_TEST_CHOICE", "Exhaustive", 1);  // case-sensitive by design
  EXPECT_EQ(telemetry::env_choice("APOLLO_TEST_CHOICE", "twostage",
                                  {"exhaustive", "twostage"}),
            "twostage");
  unsetenv("APOLLO_TEST_CHOICE");
  EXPECT_EQ(telemetry::env_choice("APOLLO_TEST_CHOICE", "exhaustive",
                                  {"exhaustive", "twostage"}),
            "exhaustive");
}

TEST_F(SearchRuntimeTest, ResetRestoresEnvSearchDefaults) {
  auto& rt = Runtime::instance();
  EXPECT_EQ(rt.search_options().mode, SearchMode::Exhaustive);
  rt.set_search_options(twostage(6));
  EXPECT_EQ(rt.search_options().mode, SearchMode::TwoStage);
  EXPECT_EQ(rt.search_options().budget, 6u);
  rt.reset();
  EXPECT_EQ(rt.search_options().mode, SearchMode::Exhaustive);
}

TEST_F(SearchRuntimeTest, TwoStageSweepRespectsBudgetAndMeasuresAnchors) {
  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Record);
  rt.set_search_options(twostage(6));
  launch(5000);

  // Exhaustive would emit 13 records (seq + omp default + 11 chunks); the
  // budgeted search measures exactly its cap.
  const auto records = rt.records();
  ASSERT_LE(records.size(), 6u);
  ASSERT_GE(records.size(), 4u);  // anchors + 2 floor
  bool seq_anchor = false;
  bool omp_anchor = false;
  for (const auto& record : records) {
    const std::string policy = record.at(features::kParamPolicy).as_string();
    const std::int64_t chunk = record.at(features::kParamChunk).as_int();
    if (policy == "seq" && chunk == 0) seq_anchor = true;
    if (policy == "omp" && chunk == 0) omp_anchor = true;
    EXPECT_GT(record.at(features::kMeasureRuntime).as_real(), 0.0);
  }
  // The trainer's labelling rules depend on both baseline variants existing.
  EXPECT_TRUE(seq_anchor);
  EXPECT_TRUE(omp_anchor);
}

TEST_F(SearchRuntimeTest, TwoStageSweepAccountsSearchedVsSkipped) {
  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Record);
  rt.set_search_options(twostage(6));
  telemetry::set_enabled(true);
  auto& registry = telemetry::MetricsRegistry::instance();
  const auto measured0 =
      registry.counter("apollo_search_measured_total", "").value();
  const auto skipped0 = registry.counter("apollo_search_skipped_total", "").value();
  const auto seeded0 = registry.counter("apollo_search_seeded_total", "").value();
  launch(5000);
  telemetry::set_enabled(false);
  const auto measured =
      registry.counter("apollo_search_measured_total", "").value() - measured0;
  const auto skipped = registry.counter("apollo_search_skipped_total", "").value() - skipped0;
  const auto seeded = registry.counter("apollo_search_seeded_total", "").value() - seeded0;
  EXPECT_EQ(measured, rt.record_count());
  EXPECT_GT(skipped, 0u);  // two-stage never touches most of the space
  EXPECT_GT(seeded, 0u);   // the model-ranked stage contributed seeds
  // The (policy x chunk) space has 24 points; measured + skipped covers it.
  EXPECT_EQ(measured + skipped, 24u);
}

TEST_F(SearchRuntimeTest, ExhaustiveSweepAlsoCountsMeasured) {
  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Record);  // default options: exhaustive
  telemetry::set_enabled(true);
  auto& registry = telemetry::MetricsRegistry::instance();
  const auto measured0 =
      registry.counter("apollo_search_measured_total", "").value();
  const auto skipped0 = registry.counter("apollo_search_skipped_total", "").value();
  launch(5000);
  telemetry::set_enabled(false);
  EXPECT_EQ(registry.counter("apollo_search_measured_total", "").value() - measured0, 13u);
  EXPECT_EQ(registry.counter("apollo_search_skipped_total", "").value() - skipped0, 0u);
}

TEST_F(SearchRuntimeTest, TwoStageSweepDataTrainsAUsableModel) {
  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Record);
  rt.set_search_options(twostage(8));
  for (const std::int64_t size : {500, 1000, 2000, 100000, 200000, 400000}) {
    for (int rep = 0; rep < 2; ++rep) launch(size);
  }
  const auto records = rt.records();
  ASSERT_FALSE(records.empty());
  TunerModel model;
  ASSERT_NO_THROW(model = Trainer::train(records, TunedParameter::Policy));
  EXPECT_GT(model.tree().node_count(), 0u);
}

TEST_F(SearchRuntimeTest, AugmentInstalledOnlyUnderTwoStage) {
  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);
  rt.set_search_options(twostage(8));
  online::OnlineConfig config;
  rt.configure_online(config);
  EXPECT_TRUE(rt.online().retrainer().has_augment());

  SearchOptions exhaustive;
  rt.set_search_options(exhaustive);
  rt.configure_online(config);
  EXPECT_FALSE(rt.online().retrainer().has_augment());
}

TEST_F(SearchRuntimeTest, AdaptRetrainsSucceedWithAugmentation) {
  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);
  rt.set_search_options(twostage(8));

  online::OnlineConfig config;
  config.sample_stride = 1;
  config.min_retrain_samples = 16;
  config.retrain_every = 48;
  config.max_retrain_duty = 0.0;  // unthrottled: the test wants retrains
  config.explorer.epsilon = 0.10;
  rt.configure_online(config);

  for (int i = 0; i < 200; ++i) launch(i % 2 == 0 ? 1000 : 200000);
  rt.online().wait_retrain_idle();

  const auto status = rt.online().status();
  EXPECT_GE(status.retrains_completed, 1u);
  EXPECT_EQ(status.retrains_failed, 0u) << rt.online().retrainer().last_error();
}

// The TSan lane: tuned dispatch on several application threads while the
// background Retrainer runs budgeted searches (model measurements + record
// synthesis) inside its timed retrain. The augment closure must share no
// mutable state with the dispatch path.
TEST_F(SearchRuntimeTest, ConcurrentDispatchDuringAugmentedRetrains) {
  auto& rt = Runtime::instance();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);
  rt.set_search_options(twostage(8));

  online::OnlineConfig config;
  config.sample_stride = 1;
  config.min_retrain_samples = 16;
  config.retrain_every = 32;
  config.max_retrain_duty = 0.0;
  config.explorer.epsilon = 0.10;
  rt.configure_online(config);

  constexpr int kThreads = 4;
  constexpr int kLaunches = 150;
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &done] {
      for (int i = 0; i < kLaunches; ++i) {
        launch((t + i) % 3 == 0 ? 200000 : 1500);
      }
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& worker : workers) worker.join();
  rt.online().wait_retrain_idle();

  EXPECT_EQ(done.load(), kThreads);
  const auto status = rt.online().status();
  EXPECT_EQ(status.retrains_failed, 0u) << rt.online().retrainer().last_error();
  EXPECT_GE(status.launches, static_cast<std::uint64_t>(kThreads * kLaunches) - 1);
}
