#include "instr/signature.hpp"

namespace apollo::instr {

SignatureRegistry& SignatureRegistry::instance() {
  static SignatureRegistry registry;
  return registry;
}

const std::string& SignatureRegistry::register_signature(KernelSignature signature) {
  std::lock_guard lock(mutex_);
  auto [it, inserted] = signatures_.insert_or_assign(signature.loop_id, signature);
  return it->first;
}

std::optional<KernelSignature> SignatureRegistry::lookup(const std::string& loop_id) const {
  std::lock_guard lock(mutex_);
  auto it = signatures_.find(loop_id);
  if (it == signatures_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> SignatureRegistry::loop_ids() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> ids;
  ids.reserve(signatures_.size());
  for (const auto& [id, sig] : signatures_) ids.push_back(id);
  return ids;
}

std::size_t SignatureRegistry::size() const {
  std::lock_guard lock(mutex_);
  return signatures_.size();
}

void SignatureRegistry::clear() {
  std::lock_guard lock(mutex_);
  signatures_.clear();
}

}  // namespace apollo::instr
