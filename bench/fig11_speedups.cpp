// Figure 11: end-to-end speedup from dynamically tuning execution policies
// with Apollo, across a range of problem sizes on a single (modeled) node.
// Paper: up to 4.8x for CleverLeaf, 3.36x for LULESH, 1.15x for ARES.
// Per SIV-C, deployed models use the top-5 features and tree depth 15.

#include <cstdio>

#include "bench/harness.hpp"
#include "ml/decision_tree.hpp"

using namespace apollo;

namespace {

TunerModel deployed_model(const LabeledData& data) {
  const auto top = bench::top_features(data.dataset, 5);
  ml::TreeParams params;
  params.max_depth = 15;
  ml::DecisionTree tree = ml::DecisionTree::fit(data.dataset.select_features(top), params);
  return TunerModel(TunedParameter::Policy, std::move(tree), data.dictionaries);
}

}  // namespace

int main() {
  bench::print_heading("End-to-end speedups from dynamic policy tuning", "Figure 11");

  for (auto& app : apps::make_all_applications()) {
    Runtime::instance().reset();
    auto& rt = Runtime::instance();
    const auto records = bench::record_training(*app, 5, /*with_chunks=*/false);
    const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Policy);
    const TunerModel model = deployed_model(data);

    // Baselines are each application's shipped defaults: OpenMP everywhere
    // for the LULESH/CleverLeaf application kernels, ARES developers'
    // per-kernel assignments, framework-managed copies sequential.
    std::printf("--- %s ---\n", app->name().c_str());
    bench::print_row({"size", "default", "apollo", "speedup"}, {8, 14, 14, 10});

    const int steps = 5;
    for (int size : app->training_sizes()) {
      rt.set_execute_selected(false);
      rt.set_mode(Mode::Off);
      rt.reset_stats();
      app->run(apps::RunConfig{app->problems()[0], size, steps});
      const double baseline = rt.stats().total_seconds;

      rt.set_mode(Mode::Tune);
      rt.set_policy_model(model);
      rt.reset_stats();
      app->run(apps::RunConfig{app->problems()[0], size, steps});
      const double tuned = rt.stats().total_seconds;
      rt.clear_models();
      rt.set_mode(Mode::Off);

      bench::print_row({std::to_string(size), bench::fmt_seconds(baseline),
                        bench::fmt_seconds(tuned), bench::fmt(baseline / tuned, 2) + "x"},
                       {8, 14, 14, 10});
    }
    std::printf("\n");
  }
  std::printf("Paper shape: CleverLeaf gains most (small AMR patches run serially), LULESH\n"
              "substantially, ARES modestly (only one ported package; Amdahl-limited).\n");
  return 0;
}
