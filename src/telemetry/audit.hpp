#pragma once

// Decision audit log: the complete-record big sibling of the sampled
// introspection log. When enabled, *every* tuned launch appends one JSON
// line — model generation, the exact feature vector the policy tree saw, the
// chosen label, the executed variant, and the measured runtime — and every
// ground-truth probe appends its measurement. That is exactly the state a
// replay needs to re-evaluate any candidate model offline and answer "what
// if this model had been live?" (tools/apollo_replay) without rerunning the
// application.
//
// Durability is bounded: lines append to rotating segment files
// (<base>.000001.jsonl, ...) capped in size and count, so a long-running
// process never grows an unbounded log. Appends buffer in memory and flush on
// a byte threshold, the collector cadence, and shutdown; readers tailing a
// live segment must tolerate one partial trailing line (read_complete_lines).
//
// Thread-safety: append/flush are internally synchronized (one mutex; the
// hot path formats outside any file I/O, which happens only on flush).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace apollo::telemetry {

struct AuditConfig {
  std::string base_path;                     ///< "" disables; ".jsonl" suffix optional
  std::size_t segment_bytes = 4u << 20;      ///< rotate a segment past this size
  std::size_t max_segments = 8;              ///< oldest segments deleted beyond this
  std::size_t flush_bytes = 64u << 10;       ///< buffered bytes that force a flush
};

/// One audited event: a tuned-launch decision or a ground-truth probe.
struct AuditRecord {
  enum class Kind : std::uint8_t { Decision, Probe };
  Kind kind = Kind::Decision;
  std::uint64_t ts_ns = 0;
  std::string kernel;
  std::uint64_t bucket = 0;         ///< coarse feature bucket (online::feature_bucket)
  std::uint64_t model_version = 0;  ///< registry generation (0 = offline model)
  std::string label;                ///< policy model's chosen label ("" = no model)
  std::string policy;               ///< executed (decision) / probed (probe) policy name
  std::int64_t chunk = 0;
  bool explored = false;            ///< executed variant was an exploration substitute
  double seconds = 0.0;             ///< measured (or model-charged) runtime
  /// Feature vector in the policy model's feature order (decisions only).
  std::vector<std::pair<std::string, double>> features;
  /// Optional hardware-counter annotation (telemetry/hwprof): scaled counter
  /// deltas for the launch's profiled window. has_hw gates serialization, so
  /// logs written before this field exist parse unchanged.
  bool has_hw = false;
  std::uint64_t hw_instructions = 0;
  std::uint64_t hw_cycles = 0;
  std::uint64_t hw_cache_misses = 0;
  std::uint64_t hw_branch_misses = 0;
  std::uint64_t hw_stalled_cycles = 0;
  double hw_scale = 1.0;            ///< multiplexing correction applied to the deltas
};

/// Serialize one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string to_json_line(const AuditRecord& record);
/// Parse a line written by to_json_line (nullopt on malformed input).
[[nodiscard]] std::optional<AuditRecord> parse_audit_line(const std::string& line);

/// All '\n'-terminated lines of a file. A final unterminated line — a live
/// writer mid-append — is skipped rather than misparsed; empty lines are
/// dropped. Returns nullopt when the file cannot be opened.
[[nodiscard]] std::optional<std::vector<std::string>> read_complete_lines(
    const std::string& path);

class AuditLog {
public:
  static AuditLog& instance();

  /// Apply a configuration. A non-empty base path enables the log and opens
  /// the next segment (numbering continues after any existing segments); an
  /// empty one flushes, closes, and disables.
  void configure(AuditConfig config);
  [[nodiscard]] AuditConfig config() const;

  /// Cheap hot-path check (one relaxed load).
  [[nodiscard]] bool audit_enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Format and buffer one record; flushes and rotates as thresholds demand.
  void append(const AuditRecord& record);

  /// Write buffered lines to the current segment (collector cadence, tests).
  void flush();
  /// Flush and close the current segment (shutdown; configure reopens).
  void close();

  /// Existing segment paths for the configured base, oldest first.
  [[nodiscard]] std::vector<std::string> segment_paths() const;

  [[nodiscard]] std::uint64_t records_appended() const noexcept {
    return appended_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t segments_rotated() const noexcept {
    return rotated_.load(std::memory_order_relaxed);
  }

  /// Close and forget configuration and counters (tests). Existing segment
  /// files are left on disk.
  void reset_for_testing();

private:
  AuditLog() = default;

  void open_segment_locked();
  void flush_locked();
  void rotate_locked();
  [[nodiscard]] std::string segment_path(std::uint64_t index) const;
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::string>> existing_segments_locked()
      const;

  mutable std::mutex mutex_;
  AuditConfig config_;
  std::atomic<bool> enabled_{false};
  std::string buffer_;
  std::string stem_;               ///< base path without the .jsonl suffix
  std::uint64_t segment_index_ = 0;
  std::size_t segment_written_ = 0;    ///< bytes in the current segment
  std::FILE* file_ = nullptr;          ///< current segment (append-only)
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::uint64_t> rotated_{0};
};

}  // namespace apollo::telemetry
