// Tests for mini-ARES: mixed-material bookkeeping, dynamic region lists,
// the un-ported conduction package, and deck sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/application.hpp"
#include "apps/ares/ares.hpp"
#include "core/runtime.hpp"
#include "perf/blackboard.hpp"

using namespace apollo;
using apps::ares::AresConfig;
using apps::ares::Simulation;

namespace {

class AresTest : public ::testing::Test {
protected:
  void SetUp() override {
    Runtime::instance().reset();
    perf::Blackboard::instance().clear();
  }
  void TearDown() override { Runtime::instance().reset(); }
};

}  // namespace

TEST_F(AresTest, ConstructionValidation) {
  EXPECT_THROW(Simulation(AresConfig{"sedov", 4, 0.3}), std::invalid_argument);
}

TEST_F(AresTest, MaterialCountsPerDeck) {
  EXPECT_EQ(Simulation(AresConfig{"sedov", 16, 0.3}).num_materials(), 2);
  EXPECT_EQ(Simulation(AresConfig{"jet", 16, 0.3}).num_materials(), 3);
  EXPECT_EQ(Simulation(AresConfig{"hotspot", 16, 0.3}).num_materials(), 3);
}

TEST_F(AresTest, VolumeFractionsSumToOne) {
  for (const char* deck : {"sedov", "jet", "hotspot"}) {
    Simulation sim(AresConfig{deck, 24, 0.3});
    sim.run(8);
    EXPECT_LT(sim.max_vf_error(), 1e-9) << deck;
  }
}

TEST_F(AresTest, MaterialListsPopulated) {
  Simulation sim(AresConfig{"jet", 32, 0.3});
  for (int m = 0; m < sim.num_materials(); ++m) {
    EXPECT_GT(sim.material_cells(m), 0u) << "material " << m;
  }
}

TEST_F(AresTest, MixedCellsGrowAsMaterialsAdvect) {
  Simulation sim(AresConfig{"jet", 32, 0.3});
  const std::size_t initial = sim.mixed_cells();
  sim.run(10);
  EXPECT_GT(sim.mixed_cells(), initial);
}

TEST_F(AresTest, MaterialListLengthsAreDynamic) {
  Simulation sim(AresConfig{"sedov", 32, 0.3});
  const std::size_t before = sim.material_cells(1);
  sim.run(12);
  const std::size_t after = sim.material_cells(1);
  EXPECT_NE(before, after);  // the blast advects material 1 outward
}

TEST_F(AresTest, FieldsStayFinite) {
  for (const char* deck : {"sedov", "jet", "hotspot"}) {
    Simulation sim(AresConfig{deck, 24, 0.3});
    sim.run(10);
    EXPECT_TRUE(std::isfinite(sim.total_mass())) << deck;
    EXPECT_GT(sim.total_mass(), 0.0) << deck;
  }
}

TEST_F(AresTest, MassApproximatelyConserved) {
  Simulation sim(AresConfig{"sedov", 32, 0.3});
  const double before = sim.total_mass();
  sim.run(10);
  EXPECT_NEAR(sim.total_mass() / before, 1.0, 0.05);
}

TEST_F(AresTest, ConductionPackageChargedOnlyWhenEnabled) {
  {
    Simulation sim(AresConfig{"hotspot", 24, 0.3});
    sim.run(2);
    EXPECT_TRUE(
        Runtime::instance().stats().per_kernel.count("ares:conduction_package"));
  }
  Runtime::instance().reset_stats();
  {
    Simulation sim(AresConfig{"sedov", 24, 0.3});
    sim.run(2);
    EXPECT_FALSE(
        Runtime::instance().stats().per_kernel.count("ares:conduction_package"));
  }
}

TEST_F(AresTest, RadiationPackageOnlyForHotspot) {
  {
    Simulation sim(AresConfig{"hotspot", 24, 0.3});
    sim.run(2);
    EXPECT_TRUE(Runtime::instance().stats().per_kernel.count("ares:radiation_package"));
  }
  Runtime::instance().reset_stats();
  {
    Simulation sim(AresConfig{"jet", 24, 0.3});
    sim.run(2);
    EXPECT_FALSE(Runtime::instance().stats().per_kernel.count("ares:radiation_package"));
  }
}

TEST_F(AresTest, RadiationKeepsFieldsFinite) {
  Simulation sim(AresConfig{"hotspot", 32, 0.3});
  sim.run(12);
  EXPECT_TRUE(std::isfinite(sim.total_mass()));
  EXPECT_LT(sim.max_vf_error(), 1e-9);
}

TEST_F(AresTest, ConductionIsNotTunable) {
  Runtime::instance().set_mode(Mode::Record);
  Simulation sim(AresConfig{"hotspot", 24, 0.3});
  sim.run(1);
  for (const auto& record : Runtime::instance().records()) {
    EXPECT_NE(record.at("loop_id").as_string(), "ares:conduction_package");
  }
}

TEST_F(AresTest, HandAssignedDefaultsRespected) {
  // Material-list kernels default to sequential, grid kernels to OpenMP —
  // the ARES developers' static assignment the paper compares against.
  Simulation sim(AresConfig{"sedov", 24, 0.3});
  Runtime::instance().set_mode(Mode::Record);
  Runtime::instance().clear_records();
  sim.run(1);
  // In Record sweep mode execution uses defaults; verify via a fresh Off-mode
  // begin() decision on representative kernels instead.
  Runtime::instance().set_mode(Mode::Off);
  // (Defaults are embedded in the KernelHandles; spot-check through stats:
  // both kernels must at least have been charged.)
  const auto& stats = Runtime::instance().stats();
  EXPECT_TRUE(stats.per_kernel.count("ares:eos_material"));
  EXPECT_TRUE(stats.per_kernel.count("ares:ideal_gas_bulk"));
}

TEST_F(AresTest, KernelPopulationLaunched) {
  Simulation sim(AresConfig{"jet", 24, 0.3});
  sim.run(2);
  const auto& stats = Runtime::instance().stats();
  for (const char* id :
       {"ares:ideal_gas_bulk", "ares:calc_dt", "ares:flux_x", "ares:flux_y", "ares:advec_cell",
        "ares:advec_vf", "ares:vf_normalize", "ares:eos_material", "ares:mix_relax",
        "ares:update_halo"}) {
    EXPECT_TRUE(stats.per_kernel.count(id)) << id;
  }
  // advec_vf and eos_material launch once per material per step.
  EXPECT_EQ(stats.per_kernel.at("ares:advec_vf").invocations, 2 * 3);
}

TEST_F(AresTest, JetSlugMovesRight) {
  Simulation sim(AresConfig{"jet", 32, 0.3});
  const std::size_t slug_before = sim.material_cells(1);
  sim.run(12);
  // The slug material still exists and has smeared into more cells.
  EXPECT_GE(sim.material_cells(1), slug_before);
}

TEST_F(AresTest, ApplicationInterface) {
  auto app = apps::make_ares();
  EXPECT_EQ(app->name(), "ARES");
  EXPECT_EQ(app->problems(), (std::vector<std::string>{"sedov", "jet", "hotspot"}));
  Runtime::instance().reset_stats();
  app->run(apps::RunConfig{"hotspot", 24, 2});
  EXPECT_GT(Runtime::instance().stats().invocations, 0);
}

TEST_F(AresTest, AllApplicationsFactory) {
  const auto all = apps::make_all_applications();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name(), "LULESH");
  EXPECT_EQ(all[1]->name(), "CleverLeaf");
  EXPECT_EQ(all[2]->name(), "ARES");
}
