# Empty dependencies file for ext_gpu_backend.
# This may be replaced when dependencies are built.
