#pragma once

// Per-rank time accounting for the strong-scaling experiments (Figs. 12-13).
//
// A distributed AMR run executes each patch's kernels on the rank that owns
// the patch and synchronizes every step. We run the full simulation in one
// process (so the physics and the per-launch tuning decisions are identical
// to a distributed run) while charging each kernel's modeled runtime to the
// owning rank; a step's cost is then max-over-ranks plus collective overhead
// from the cluster model.

#include <vector>

#include "sim/cluster.hpp"

namespace apollo {

class ClusterAccountant {
public:
  ClusterAccountant(sim::ClusterModel model, unsigned ranks)
      : model_(model), ranks_(ranks), rank_seconds_(ranks, 0.0), rank_patches_(ranks, 0) {}

  [[nodiscard]] unsigned ranks() const noexcept { return ranks_; }

  void begin_step() {
    std::fill(rank_seconds_.begin(), rank_seconds_.end(), 0.0);
    std::fill(rank_patches_.begin(), rank_patches_.end(), std::size_t{0});
  }

  /// Kernel charges that follow go to this rank.
  void set_current_rank(unsigned rank) noexcept { current_rank_ = rank < ranks_ ? rank : 0; }
  [[nodiscard]] unsigned current_rank() const noexcept { return current_rank_; }

  /// Declare that the current step places one patch on `rank`.
  void add_patch(unsigned rank) {
    if (rank < ranks_) rank_patches_[rank] += 1;
  }

  /// Called by the Apollo runtime for every kernel execution.
  void charge(double seconds) { rank_seconds_[current_rank_] += seconds; }

  /// Work charged to all ranks equally (un-decomposed global phases).
  void charge_all(double seconds) {
    for (double& s : rank_seconds_) s += seconds / static_cast<double>(ranks_);
  }

  void end_step() { total_seconds_ += model_.step_seconds(rank_seconds_, rank_patches_); }

  [[nodiscard]] double total_seconds() const noexcept { return total_seconds_; }
  void reset() {
    total_seconds_ = 0.0;
    begin_step();
  }

private:
  sim::ClusterModel model_;
  unsigned ranks_;
  unsigned current_rank_ = 0;
  std::vector<double> rank_seconds_;
  std::vector<std::size_t> rank_patches_;
  double total_seconds_ = 0.0;
};

}  // namespace apollo
