#include "online/online_tuner.hpp"

#include <utility>

#include "telemetry/telemetry.hpp"

namespace apollo::online {

OnlineTuner::OnlineTuner(SampleBuffer* buffer, OnlineConfig config)
    : config_(std::move(config)),
      buffer_(buffer),
      explorer_(config_.explorer),
      retrainer_(config_.tree_params) {
  retrainer_.set_train_chunk(!config_.explorer.chunk_values.empty());
  retrainer_.set_publisher([this](Retrainer::Result result) {
    registry_.publish(std::move(result.policy), std::move(result.chunk),
                      std::move(result.threads));
  });
  if (!config_.model_dir.empty()) {
    registry_.set_persist_dir(config_.model_dir);
    registry_.load_latest();
  }
}

void OnlineTuner::configure(OnlineConfig config) {
  retrainer_.wait_idle();
  config_ = std::move(config);
  explorer_.reconfigure(config_.explorer);
  retrainer_.set_tree_params(config_.tree_params);
  retrainer_.set_train_chunk(!config_.explorer.chunk_values.empty());
  detectors_.clear();
  last_detector_key_ = nullptr;
  last_detector_ = nullptr;
  record_tick_ = 0;
  launches_ = 0;
  launches_since_request_ = 0;
  retrain_pending_ = false;
  if (!config_.model_dir.empty()) {
    registry_.set_persist_dir(config_.model_dir);
    if (registry_.version() == 0) registry_.load_latest();
  }
}

DriftDetector* OnlineTuner::detector(const std::string& loop_id) {
  auto it = detectors_.find(loop_id);
  return it != detectors_.end() ? &it->second : nullptr;
}

DriftDetector& OnlineTuner::detector_for(const std::string& loop_id) {
  if (last_detector_ != nullptr && loop_id == *last_detector_key_) return *last_detector_;
  const auto [it, inserted] = detectors_.try_emplace(loop_id, config_.drift);
  last_detector_key_ = &it->first;  // element addresses survive rehashing
  last_detector_ = &it->second;
  return it->second;
}

std::optional<Variant> OnlineTuner::maybe_explore(const std::string& loop_id,
                                                  std::uint64_t bucket) {
  auto candidate = explorer_.maybe_explore();
  if (!candidate) return std::nullopt;
  if (config_.explore_cost_guard <= 0.0) return candidate;
  const std::uint64_t n = explorer_.explorations();
  if (config_.reprobe_stride > 0 && n % config_.reprobe_stride == 0) {
    return candidate;  // periodic re-probe ignores the guard
  }
  const DriftDetector& det = detector_for(loop_id);
  const double known = det.baseline(bucket, candidate->key());
  const double best = det.best_baseline(bucket);
  if (known > 0.0 && best > 0.0 && known > config_.explore_cost_guard * best) {
    ++vetoes_;
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry::instance()
          .counter("apollo_explore_vetoed_total",
                   "Exploration candidates rejected by the cost guard.")
          .inc();
    }
    return std::nullopt;
  }
  return candidate;
}

void OnlineTuner::observe(const std::string& loop_id, std::uint64_t bucket,
                          const Variant& executed, double seconds, bool explored) {
  DriftDetector& det = detector_for(loop_id);
  det.observe(bucket, executed.key(), seconds, /*chosen=*/!explored);
  ++launches_;
  ++launches_since_request_;
  if (det.consume_fire()) {
    ++drift_fires_;
    retrain_pending_ = true;
    pushed_at_fire_ = buffer_->total_pushed();
    explorer_.set_boosted(true);
    if (telemetry::enabled()) {
      telemetry::MetricsRegistry::instance()
          .counter("apollo_drift_fires_total", "Drift-detector fires per kernel.",
                   "kernel=\"" + loop_id + "\"")
          .inc();
      telemetry::emit_instant(telemetry::EventKind::DriftFire,
                              telemetry::Tracer::instance().intern(loop_id), bucket);
    }
  }
}

void OnlineTuner::observe_probe(const std::string& loop_id, std::uint64_t bucket,
                                const Variant& variant, double seconds) {
  detector_for(loop_id).observe(bucket, variant.key(), seconds, /*chosen=*/false);
}

void OnlineTuner::maybe_retrain() {
  // Cheap checks first: this runs on every launch, so the common no-op path
  // must not touch the buffer lock or the retrainer state.
  const bool cadence_due =
      config_.retrain_every > 0 && launches_since_request_ >= config_.retrain_every;
  const bool drift_due =
      retrain_pending_ && buffer_->total_pushed() - pushed_at_fire_ >= config_.post_drift_samples;
  if (!drift_due && !cadence_due) return;
  if (retrainer_.busy()) return;
  if (!drift_due && config_.max_retrain_duty > 0.0) {
    // Duty-cycle throttle: keep background training to a bounded share of
    // wall time so it cannot starve the application on small machines.
    const double last = retrainer_.last_duration_seconds();
    if (last > 0.0) {
      const auto since = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                       last_request_)
                             .count();
      if (since < last / config_.max_retrain_duty) return;
    }
  }
  if (buffer_->size() < config_.min_retrain_samples) return;
  if (retrainer_.request(buffer_->snapshot_shared(config_.retrain_window))) {
    retrain_pending_ = false;
    launches_since_request_ = 0;
    last_request_ = std::chrono::steady_clock::now();
  }
}

void OnlineTuner::on_models_swapped() {
  explorer_.set_boosted(false);
  for (auto& [loop_id, det] : detectors_) {
    (void)loop_id;
    det.rearm();
  }
}

OnlineTuner::Status OnlineTuner::status() const {
  Status s;
  s.model_version = registry_.version();
  s.drift_fires = drift_fires_;
  s.retrains_completed = retrainer_.completed();
  s.retrains_failed = retrainer_.failed();
  s.explorations = explorer_.explorations();
  s.exploration_vetoes = vetoes_;
  s.launches = launches_;
  s.retrain_in_flight = retrainer_.busy();
  s.exploring_boosted = explorer_.boosted();
  return s;
}

}  // namespace apollo::online
