#pragma once

// mini-CleverLeaf: 2D compressible Euler shock hydrodynamics with
// block-structured AMR. Finite-volume Rusanov scheme on a patch hierarchy
// (refinement ratio 2, up to 3 levels) with gradient-based flagging,
// signature clustering, ghost exchange (parent prolongation, sibling copies,
// reflective physical boundaries applied by 2-wide strip kernels), and
// fine-to-coarse restriction. Every loop runs through apollo::forall; patch
// sizes — and therefore kernel iteration counts — track the solution.

#include <string>
#include <vector>

#include "apps/application.hpp"
#include "apps/cleverleaf/amr.hpp"

namespace apollo::apps::cleverleaf {

struct CleverConfig {
  std::string problem = "sedov";  ///< sedov | sod | triple_point
  int coarse_cells = 48;          ///< level-0 cells per side (square domain)
  int max_levels = 3;
  int ratio = 2;
  int regrid_interval = 4;
  double flag_threshold = 0.18;   ///< relative density-gradient trigger
  double cfl = 0.35;
  /// MUSCL reconstruction with a minmod limiter (second-order in space).
  /// Sharper shocks at a higher per-face cost; the heavier flux kernels get
  /// their own identity so Apollo models see the different instruction mix.
  bool second_order = false;
};

class Simulation {
public:
  explicit Simulation(CleverConfig config);

  void step();
  void run(int steps);

  [[nodiscard]] const std::vector<Level>& levels() const noexcept { return levels_; }
  [[nodiscard]] double time() const noexcept { return time_; }
  [[nodiscard]] int cycle() const noexcept { return cycle_; }

  /// Total patches across refined levels (diagnostic; tests + benches).
  [[nodiscard]] std::size_t patch_count() const;

  /// Conserved-quantity totals over level 0 (mass, energy) for sanity tests.
  [[nodiscard]] double total_mass() const;
  [[nodiscard]] double total_energy() const;

  /// ASCII rendering of the density field with AMR patch outlines (the
  /// visualization component of the paper's Fig. 12): `width` columns,
  /// aspect-correct rows. Cells covered by finer patches draw from the
  /// finest level; '#'..'.' grade density, '+' marks patch corners.
  [[nodiscard]] std::string render_ascii(int width = 64) const;

  void regrid();

private:
  void initialize_patch(Patch& patch, double dx) const;
  void fill_ghosts(int level_index);
  void apply_physical_bc(Patch& patch, int level_nx, int level_ny);
  void equation_of_state();
  double compute_dt();
  void hydro_step(double dt);
  void restrict_level(int fine_index);
  void flag_level(int level_index, std::vector<std::uint8_t>& mask) const;
  void rebalance();

  CleverConfig config_;
  std::vector<Level> levels_;
  double time_ = 0.0;
  int cycle_ = 0;
  int next_patch_id_ = 0;
};

}  // namespace apollo::apps::cleverleaf
