#pragma once

// Mesh and state for mini-LULESH: a simplified Lagrangian shock-hydro proxy
// on a structured s x s x s hex mesh, mirroring LULESH's kernel population —
// element loops whose counts track the problem size, node loops, boundary
// node lists, and 11 material-region element lists (the paper's category-2
// kernels with region-dependent iteration counts).

#include <cstdint>
#include <vector>

#include "raja/index_set.hpp"

namespace apollo::apps::lulesh {

struct Domain {
  int s = 0;          ///< elements per edge
  int numElem = 0;    ///< s^3
  int numNode = 0;    ///< (s+1)^3

  // Node-centered fields.
  std::vector<double> x, y, z;        ///< coordinates
  std::vector<double> xd, yd, zd;     ///< velocities
  std::vector<double> xdd, ydd, zdd;  ///< accelerations
  std::vector<double> fx, fy, fz;     ///< force accumulators
  std::vector<double> nodalMass;

  // Element-centered fields.
  std::vector<double> e;        ///< internal energy
  std::vector<double> p;        ///< pressure
  std::vector<double> q;        ///< artificial viscosity
  std::vector<double> v;        ///< relative volume
  std::vector<double> volo;     ///< reference volume
  std::vector<double> vnew;     ///< relative volume after kinematics
  std::vector<double> delv;     ///< v change this step
  std::vector<double> vdov;     ///< volume change rate
  std::vector<double> arealg;   ///< characteristic length
  std::vector<double> ss;       ///< sound speed
  std::vector<double> elemMass;
  std::vector<double> sigxx, sigyy, sigzz;  ///< stress terms
  std::vector<double> fx_elem, fy_elem, fz_elem;  ///< per-element corner forces (8/elem)
  std::vector<double> dtcourant_el, dthydro_el;

  // Per-region EOS work arrays (sized numElem; indexed by element id).
  std::vector<double> e_old, p_old, q_old, compression, work, p_new, e_new, q_new;

  // Material regions: 11 element lists of skewed sizes, plus a tiny
  // per-region summary array driving the 11-iteration kernels.
  int numReg = 11;
  std::vector<raja::IndexSet> regions;     ///< one ListSegment IndexSet each
  std::vector<double> regionMass;          ///< per-region reduction target
  std::vector<double> regionSize;          ///< element count per region

  // Boundary node index sets (symmetry planes at x=0 / y=0 / z=0).
  raja::IndexSet symmX, symmY, symmZ;

  // Time integration state.
  double time = 0.0;
  double deltatime = 1e-7;
  double dtcourant = 1e20;
  double dthydro = 1e20;
  int cycle = 0;

  [[nodiscard]] int nodeIndex(int i, int j, int k) const noexcept {
    return i + (s + 1) * (j + (s + 1) * k);
  }
  [[nodiscard]] int elemIndex(int i, int j, int k) const noexcept {
    return i + s * (j + s * k);
  }

  /// Allocate all fields and build index sets for an s^3 mesh with the Sedov
  /// initial state (point energy at the origin corner element).
  void build(int edge_elems, double initial_energy);
};

/// Hexahedron volume from its 8 corners (standard corner ordering), via a
/// six-tetrahedron decomposition. Exposed for unit tests.
[[nodiscard]] double hex_volume(const double* hx, const double* hy, const double* hz) noexcept;

/// Per-corner outward area normals of a hexahedron (LULESH's
/// CalcElemNodeNormals): each of the 6 faces contributes a quarter of its
/// area vector to each of its 4 corners. Outputs are accumulated into
/// nx/ny/nz[8] (caller zeroes them). Exposed for unit tests.
void hex_corner_normals(const double* hx, const double* hy, const double* hz, double* nx,
                        double* ny, double* nz) noexcept;

}  // namespace apollo::apps::lulesh
