#pragma once

// Daemon-side fleet observability: the aggregation + SLO half of the fleet
// observability plane (the wire-level trace context is in wire.hpp).
//
// The trainer daemon feeds this object from its serving and trainer threads:
// connects, disconnects, nacks, ingested batches, shipped TELEMETRY
// snapshots, completed trains (with lineage), and pushes. From those it
// maintains:
//
//   - a per-client view: applied model generation, generation lag behind the
//     daemon, staleness (how long the client has been behind), batches and
//     samples contributed, and regret attributable to staleness — the regret
//     a client reported accruing while it was running a stale generation;
//   - a merged fleet MetricsSnapshot: every client's shipped registry
//     snapshot combined (counters sum exactly, histograms merge
//     bucket-for-bucket, gauges are tagged client="...") plus the
//     apollo_fleet_* series, atomically exported to a metrics file tailed by
//     apollo_top's fleet pane;
//   - a JSONL fleet event log (connect/disconnect/nack/train/push/
//     slo_breach, each with its cause) — the daemon's flight recorder;
//   - a staleness SLO: when a client stays behind the daemon generation
//     longer than APOLLO_FLEET_SLO_MS, a breach counter trips (one count per
//     breach episode, never a kill).
//
// All timestamps are caller-provided CLOCK_MONOTONIC nanoseconds so tests
// can drive the SLO clock deterministically. Thread-safe behind one mutex;
// every hook is O(state), never O(history).

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/wire.hpp"
#include "telemetry/metrics.hpp"

namespace apollo::service {

struct FleetConfig {
  /// Merged fleet metrics export path ("" disables the file).
  std::string metrics_path;
  /// JSONL fleet event log path ("" disables the log).
  std::string events_path;
  /// Staleness SLO: a client behind the daemon generation for longer than
  /// this trips the breach counter. 0 disables the check.
  std::int64_t slo_ms = 0;
  /// Metrics export cadence (the event log is appended immediately).
  std::int64_t export_ms = 500;

  /// Read APOLLO_FLEET_METRICS_FILE / APOLLO_FLEET_EVENTS_FILE /
  /// APOLLO_FLEET_SLO_MS / APOLLO_FLEET_EXPORT_MS through the hardened
  /// warn-and-default env parsers.
  [[nodiscard]] static FleetConfig from_env();
  [[nodiscard]] bool enabled() const noexcept {
    return !metrics_path.empty() || !events_path.empty() || slo_ms > 0;
  }
};

class FleetMetrics {
public:
  explicit FleetMetrics(FleetConfig config);
  ~FleetMetrics();

  FleetMetrics(const FleetMetrics&) = delete;
  FleetMetrics& operator=(const FleetMetrics&) = delete;

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

  // --- daemon hooks (each logs its event and updates the client view) ---
  void client_connected(std::uint64_t client_id, const std::string& name, std::uint64_t now_ns);
  void client_disconnected(std::uint64_t client_id, const std::string& cause,
                           std::uint64_t now_ns);
  void hello_nacked(std::uint64_t client_id, std::uint32_t their_protocol, std::uint64_t now_ns);
  void batch_received(std::uint64_t client_id, const SampleBatch& batch,
                      std::uint64_t samples_accepted, std::uint64_t daemon_generation,
                      std::uint64_t now_ns);
  void telemetry_received(std::uint64_t client_id, const TelemetryFrame& frame,
                          std::uint64_t daemon_generation, std::uint64_t now_ns);
  void generation_trained(std::uint64_t generation, std::uint64_t samples, double train_seconds,
                          const std::vector<LineageEntry>& lineage, std::uint64_t now_ns);
  void train_failed(const std::string& cause, std::uint64_t now_ns);
  void push_sent(std::uint64_t generation, std::uint64_t clients, std::uint64_t now_ns);

  /// Periodic housekeeping from the daemon: evaluate the staleness SLO and
  /// refresh the metrics export on the configured cadence.
  void tick(std::uint64_t daemon_generation, std::uint64_t now_ns);
  /// Unconditional export (daemon shutdown; tests).
  void export_now(std::uint64_t daemon_generation, std::uint64_t now_ns);

  // --- introspection (tests, apollo_served stats, the fleet bench) ---
  struct ClientView {
    std::uint64_t client_id = 0;
    std::string name;
    bool connected = false;
    std::uint64_t applied_generation = 0;
    std::uint64_t generation_lag = 0;   ///< vs the generation passed to tick/export
    double staleness_seconds = 0.0;     ///< time behind the daemon generation (0 = caught up)
    double last_push_age_seconds = -1.0;  ///< since the daemon last pushed to it (-1 = never)
    std::uint64_t batches = 0;
    std::uint64_t samples = 0;
    std::uint64_t telemetry_snapshots = 0;
    std::uint64_t slo_breaches = 0;
    double regret_stale_seconds = 0.0;
  };
  [[nodiscard]] std::vector<ClientView> clients(std::uint64_t daemon_generation,
                                                std::uint64_t now_ns) const;
  [[nodiscard]] std::uint64_t slo_breaches() const;
  [[nodiscard]] std::uint64_t telemetry_snapshots() const;
  /// The merged fleet snapshot exactly as export writes it.
  [[nodiscard]] telemetry::MetricsSnapshot merged(std::uint64_t daemon_generation,
                                                  std::uint64_t now_ns) const;

private:
  struct ClientState {
    std::string name;
    bool connected = false;
    std::uint64_t applied_generation = 0;
    std::uint64_t behind_since_ns = 0;  ///< 0 = caught up with the daemon generation
    bool in_breach = false;             ///< edge-triggers the breach counter
    std::uint64_t last_push_ns = 0;     ///< 0 = never pushed to
    std::uint64_t batches = 0;
    std::uint64_t samples = 0;
    std::uint64_t telemetry_snapshots = 0;
    std::uint64_t slo_breaches = 0;
    double last_regret_total = -1.0;  ///< < 0 = no report yet
    double regret_stale_seconds = 0.0;
    telemetry::MetricsSnapshot snapshot;  ///< latest shipment, gauges client-tagged
  };

  void event_locked(const std::string& json_body);
  void caught_up_check_locked(ClientState& client, std::uint64_t daemon_generation,
                              std::uint64_t now_ns);
  void slo_check_locked(std::uint64_t daemon_generation, std::uint64_t now_ns);
  void export_locked(std::uint64_t daemon_generation, std::uint64_t now_ns);
  [[nodiscard]] telemetry::MetricsSnapshot merged_locked(std::uint64_t daemon_generation,
                                                         std::uint64_t now_ns) const;
  [[nodiscard]] ClientView view_locked(std::uint64_t client_id, const ClientState& client,
                                       std::uint64_t daemon_generation,
                                       std::uint64_t now_ns) const;

  FleetConfig config_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, ClientState> clients_;
  std::uint64_t slo_breaches_total_ = 0;
  std::uint64_t telemetry_snapshots_total_ = 0;
  std::uint64_t trains_logged_ = 0;
  std::uint64_t last_export_ns_ = 0;
  bool events_open_failed_ = false;
  std::ofstream events_;
};

}  // namespace apollo::service
