# Empty compiler generated dependencies file for test_ml_confusion.
# This may be replaced when dependencies are built.
