#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace apollo::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

Histogram::Histogram(const Histogram& other) { *this = other; }

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) return *this;
  bounds_ = other.bounds_;
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(other.buckets_ ? other.buckets_[i].load(std::memory_order_relaxed) : 0,
                      std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  return *this;
}

void Histogram::observe(double value) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (!buckets_) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(1,
                                                                     std::memory_order_relaxed);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0 || bounds_.empty() || !buckets_) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i == bounds_.size()) return bounds_.back();  // overflow bucket: clamp
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within = (target - static_cast<double>(cumulative)) /
                            static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  if (!buckets_) return;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double first, double factor, int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double bound = first;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& duration_bounds() {
  static const std::vector<double> bounds = exponential_bounds(1e-9, 2.0, 36);
  return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Family& MetricsRegistry::family_locked(std::string_view name,
                                                        std::string_view help, MetricKind kind) {
  auto it = families_.find(std::string(name));
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: kind mismatch for metric " + std::string(name));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = family_locked(name, help, MetricKind::Counter).series[std::string(labels)];
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = family_locked(name, help, MetricKind::Gauge).series[std::string(labels)];
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                      const std::vector<double>& upper_bounds,
                                      std::string_view labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = family_locked(name, help, MetricKind::Histogram).series[std::string(labels)];
  if (!series.histogram) series.histogram = std::make_unique<Histogram>(upper_bounds);
  return *series.histogram;
}

namespace {

std::string format_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// `name{labels}` or `name{labels,extra}` with empty pieces elided.
std::string series_name(const std::string& name, const std::string& labels,
                        const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

}  // namespace

namespace {

bool series_key_less(const SeriesSnapshot& a, const SeriesSnapshot& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

void write_atomically(const std::string& path, const std::string& what,
                      const void* self, void (*render)(const void*, std::ostream&)) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error(what + ": cannot open " + tmp);
    render(self, out);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error(what + ": cannot rename " + tmp + " to " + path);
  }
}

}  // namespace

void MetricsSnapshot::upsert(SeriesSnapshot series_snapshot) {
  const auto it =
      std::lower_bound(series.begin(), series.end(), series_snapshot, series_key_less);
  if (it != series.end() && it->name == series_snapshot.name &&
      it->labels == series_snapshot.labels) {
    *it = std::move(series_snapshot);
  } else {
    series.insert(it, std::move(series_snapshot));
  }
}

const SeriesSnapshot* MetricsSnapshot::find(std::string_view name, std::string_view labels) const {
  SeriesSnapshot probe;
  probe.name = std::string(name);
  probe.labels = std::string(labels);
  const auto it = std::lower_bound(series.begin(), series.end(), probe, series_key_less);
  if (it == series.end() || it->name != probe.name || it->labels != probe.labels) return nullptr;
  return &*it;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& theirs : other.series) {
    const auto it = std::lower_bound(series.begin(), series.end(), theirs, series_key_less);
    if (it == series.end() || it->name != theirs.name || it->labels != theirs.labels) {
      series.insert(it, theirs);
      continue;
    }
    SeriesSnapshot& ours = *it;
    if (ours.kind != theirs.kind) continue;  // kind clash: keep ours, drop theirs
    switch (ours.kind) {
      case MetricKind::Counter:
        ours.counter_value += theirs.counter_value;
        break;
      case MetricKind::Gauge:
        ours.gauge_value = theirs.gauge_value;  // last write wins
        break;
      case MetricKind::Histogram: {
        ours.hist_count += theirs.hist_count;
        ours.hist_sum += theirs.hist_sum;
        if (ours.hist_buckets.size() != ours.hist_bounds.size() + 1) {
          ours.hist_buckets.assign(ours.hist_bounds.size() + 1, 0);
        }
        if (theirs.hist_bounds == ours.hist_bounds &&
            theirs.hist_buckets.size() == ours.hist_buckets.size()) {
          for (std::size_t i = 0; i < ours.hist_buckets.size(); ++i) {
            ours.hist_buckets[i] += theirs.hist_buckets[i];
          }
        } else {
          // Re-bucket by upper bound: each foreign bucket lands in the first
          // of our buckets whose bound covers its bound (overflow otherwise).
          // Exact when our bounds are a superset of theirs.
          for (std::size_t i = 0; i < theirs.hist_buckets.size(); ++i) {
            const std::uint64_t in_bucket = theirs.hist_buckets[i];
            if (in_bucket == 0) continue;
            std::size_t target = ours.hist_bounds.size();  // overflow by default
            if (i < theirs.hist_bounds.size()) {
              const auto pos = std::lower_bound(ours.hist_bounds.begin(),
                                                ours.hist_bounds.end(), theirs.hist_bounds[i]);
              target = static_cast<std::size_t>(pos - ours.hist_bounds.begin());
            }
            ours.hist_buckets[target] += in_bucket;
          }
        }
        break;
      }
    }
  }
}

void MetricsSnapshot::tag(MetricKind kind, std::string_view key, std::string_view value) {
  bool changed = false;
  for (auto& s : series) {
    if (s.kind != kind) continue;
    std::string label;
    label.reserve(key.size() + value.size() + 3);
    label.append(key).append("=\"").append(value).append("\"");
    s.labels = s.labels.empty() ? std::move(label) : s.labels + "," + label;
    changed = true;
  }
  if (changed) std::sort(series.begin(), series.end(), series_key_less);
}

void MetricsSnapshot::write(std::ostream& out) const {
  const std::string* last_name = nullptr;
  for (const auto& s : series) {
    if (last_name == nullptr || *last_name != s.name) {
      if (!s.help.empty()) out << "# HELP " << s.name << " " << s.help << "\n";
      out << "# TYPE " << s.name << " "
          << (s.kind == MetricKind::Counter ? "counter"
              : s.kind == MetricKind::Gauge ? "gauge"
                                            : "histogram")
          << "\n";
      last_name = &s.name;
    }
    switch (s.kind) {
      case MetricKind::Counter:
        out << series_name(s.name, s.labels) << " " << s.counter_value << "\n";
        break;
      case MetricKind::Gauge:
        out << series_name(s.name, s.labels) << " " << format_number(s.gauge_value) << "\n";
        break;
      case MetricKind::Histogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.hist_bounds.size(); ++i) {
          if (i < s.hist_buckets.size()) cumulative += s.hist_buckets[i];
          out << series_name(s.name + "_bucket", s.labels,
                             "le=\"" + format_number(s.hist_bounds[i]) + "\"")
              << " " << cumulative << "\n";
        }
        out << series_name(s.name + "_bucket", s.labels, "le=\"+Inf\"") << " " << s.hist_count
            << "\n";
        out << series_name(s.name + "_sum", s.labels) << " " << format_number(s.hist_sum) << "\n";
        out << series_name(s.name + "_count", s.labels) << " " << s.hist_count << "\n";
        break;
      }
    }
  }
}

void MetricsSnapshot::write_file(const std::string& path) const {
  write_atomically(path, "MetricsSnapshot", this, [](const void* self, std::ostream& out) {
    static_cast<const MetricsSnapshot*>(self)->write(out);
  });
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    for (const auto& [labels, series] : family.series) {
      SeriesSnapshot s;
      s.name = name;
      s.labels = labels;
      s.help = family.help;
      s.kind = family.kind;
      switch (family.kind) {
        case MetricKind::Counter:
          s.counter_value = series.counter->value();
          break;
        case MetricKind::Gauge:
          s.gauge_value = series.gauge->value();
          break;
        case MetricKind::Histogram: {
          const Histogram& hist = *series.histogram;
          s.hist_bounds = hist.bounds();
          s.hist_buckets.reserve(s.hist_bounds.size() + 1);
          for (std::size_t i = 0; i <= s.hist_bounds.size(); ++i) {
            s.hist_buckets.push_back(hist.bucket(i));
          }
          s.hist_count = hist.count();
          s.hist_sum = hist.sum();
          break;
        }
      }
      // families_/series maps iterate sorted, so out.series stays sorted.
      out.series.push_back(std::move(s));
    }
  }
  return out;
}

void MetricsRegistry::write(std::ostream& out) const { snapshot().write(out); }

std::string MetricsRegistry::expose() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

void MetricsRegistry::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("MetricsRegistry: cannot open " + tmp);
    write(out);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("MetricsRegistry: cannot rename " + tmp + " to " + path);
  }
}

void MetricsRegistry::zero() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    (void)name;
    for (auto& [labels, series] : family.series) {
      (void)labels;
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

std::size_t MetricsRegistry::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [name, family] : families_) {
    (void)name;
    count += family.series.size();
  }
  return count;
}

}  // namespace apollo::telemetry
