file(REMOVE_RECURSE
  "CMakeFiles/apollo_train.dir/apollo_train.cpp.o"
  "CMakeFiles/apollo_train.dir/apollo_train.cpp.o.d"
  "apollo_train"
  "apollo_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
