file(REMOVE_RECURSE
  "CMakeFiles/micro_dispatch_overhead.dir/micro_dispatch_overhead.cpp.o"
  "CMakeFiles/micro_dispatch_overhead.dir/micro_dispatch_overhead.cpp.o.d"
  "micro_dispatch_overhead"
  "micro_dispatch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dispatch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
