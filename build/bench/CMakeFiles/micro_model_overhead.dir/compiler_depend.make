# Empty compiler generated dependencies file for micro_model_overhead.
# This may be replaced when dependencies are built.
