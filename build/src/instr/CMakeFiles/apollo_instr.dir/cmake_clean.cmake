file(REMOVE_RECURSE
  "CMakeFiles/apollo_instr.dir/mix.cpp.o"
  "CMakeFiles/apollo_instr.dir/mix.cpp.o.d"
  "CMakeFiles/apollo_instr.dir/signature.cpp.o"
  "CMakeFiles/apollo_instr.dir/signature.cpp.o.d"
  "libapollo_instr.a"
  "libapollo_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
