# Empty compiler generated dependencies file for apollo_inspect.
# This may be replaced when dependencies are built.
