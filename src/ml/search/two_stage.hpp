#pragma once

// Two-stage tuning search: model-seeded + evolutionary refinement.
//
// Stage 1 ranks the whole variant space with a *cheap* deterministic
// objective — the analytic machine model in src/sim/ — and selects a small,
// diverse seed population (the MP-optimizer pattern from Odyssey/AutoSA:
// an approximate model prunes the space before anything is measured).
// Stage 2 refines the seeds with an evolutionary loop over *measured*
// fitness: tournament selection, uniform crossover over the typed parameter
// lanes, mutation with a per-dimension step schedule that halves each
// generation, and early abort of configurations already dominated at partial
// sample count. The measurement budget is a hard cap on the number of
// distinct configurations measured; exhausting it mid-generation stops the
// search cleanly with everything measured so far.
//
// The engine is deliberately decoupled from the Runtime: callers supply the
// cheap objective, the measurement function, and an optional canonical key
// (so equivalent configurations — e.g. sequential execution, where chunk and
// team size are meaningless — dedupe to one measurement). See docs/search.md.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "ml/search/space.hpp"

namespace apollo::ml::search {

/// Deterministic splitmix64 stream: every random choice in the search comes
/// from here, so a fixed seed reproduces the full trajectory (the unit tests
/// rely on this, and so does apollo_replay when auditing searched labels).
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) noexcept : state(seed ^ 0x9e3779b97f4a7c15ULL) {}
  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::size_t below(std::size_t n) noexcept { return n > 0 ? next() % n : 0; }
};

struct SearchConfig {
  /// Hard cap on distinct configurations measured (0 = derive from
  /// budget_fraction x space size). Anchors always fit: the effective budget
  /// is at least anchors + 2 so a search can never starve the trainer of the
  /// baseline variants it needs.
  std::size_t budget = 0;
  double budget_fraction = 0.10;
  /// Stage-1 seed population drawn from the model ranking (diversified).
  std::size_t seed_k = 8;
  /// Stage-2 evolutionary generations (0 = model-seeded stage only).
  std::size_t generations = 4;
  /// Offspring per generation (0 = seed_k).
  std::size_t population = 0;
  /// Tournament size for parent selection.
  std::size_t tournament = 2;
  /// Measured samples averaged per configuration; > 1 enables the dominance
  /// early-abort at partial sample count.
  std::size_t samples_per_config = 1;
  /// Abort a configuration whose partial mean already exceeds this multiple
  /// of the best full mean seen so far.
  double abort_margin = 1.5;
  std::uint64_t seed = 0x5eedULL;
};

/// One measured configuration (mean of the samples actually taken).
struct Measurement {
  Point point;
  double seconds = 0.0;
  std::size_t samples = 0;
  bool aborted = false;  ///< dominance early-abort fired before all samples
};

struct SearchStats {
  std::size_t measured = 0;  ///< distinct configurations measured
  std::size_t skipped = 0;   ///< space size - measured (never touched)
  std::size_t seeded = 0;    ///< stage-1 seeds (incl. anchors)
  std::size_t aborted = 0;   ///< configurations cut short by dominance
  std::size_t cache_hits = 0;  ///< offspring deduped onto prior measurements
  bool budget_exhausted = false;
};

struct Result {
  std::vector<Measurement> measurements;  ///< everything measured, in order
  Point best;
  double best_seconds = std::numeric_limits<double>::infinity();
  SearchStats stats;
};

/// Deterministic model estimate for a configuration (stage 1; free).
using CheapFn = std::function<double(const Point&)>;
/// One measured sample for a configuration (stage 2; costs budget).
using MeasureFn = std::function<double(const Point&)>;
/// Canonical dedupe key: equivalent configurations map to the same key.
using CanonicalFn = std::function<std::uint64_t(const Point&)>;

class TwoStageSearch {
public:
  explicit TwoStageSearch(SearchConfig config) : config_(config) {}

  [[nodiscard]] const SearchConfig& config() const noexcept { return config_; }

  /// Run both stages. `anchors` are always measured first (the runtime pins
  /// the baseline variants its trainer labelling rules require).
  [[nodiscard]] Result run(const Space& space, const CheapFn& cheap, const MeasureFn& measure,
                           const std::vector<Point>& anchors = {},
                           const CanonicalFn& canonical = nullptr) const;

  /// The effective configuration budget for a space of `space_size` points.
  [[nodiscard]] std::size_t effective_budget(std::size_t space_size,
                                             std::size_t anchor_count) const;

  // --- evolutionary operators (exposed for deterministic unit tests) -------

  /// Uniform per-lane crossover: each lane's index comes from one parent.
  [[nodiscard]] static Point crossover(const Point& a, const Point& b, Rng& rng);

  /// Mutate at least one lane, stepping the value index by up to `max_step`
  /// positions (clamped to the lane). The caller derives max_step from the
  /// generation number: step_for_generation halves it each generation, so
  /// early generations jump across the lane and late ones refine locally.
  [[nodiscard]] static Point mutate(const Space& space, Point point, std::size_t max_step,
                                    Rng& rng);

  /// Per-dimension step schedule: lane extent / 2^(generation+1), floor 1.
  [[nodiscard]] static std::size_t step_for_generation(std::size_t lane_extent,
                                                       std::size_t generation);

  /// Index of the fittest (lowest seconds) of `tournament` sampled entrants.
  [[nodiscard]] static std::size_t tournament_select(const std::vector<double>& fitness,
                                                     std::size_t tournament, Rng& rng);

  /// Greedy max-min-distance diversification: from `ranked` (best model cost
  /// first) pick `count` points, always taking the candidate farthest (L1,
  /// index space) from everything already picked. Keeps the seed population
  /// from collapsing onto one model-favoured ridge.
  [[nodiscard]] static std::vector<Point> diversify(const Space& space,
                                                    const std::vector<Point>& ranked,
                                                    std::size_t count);

private:
  SearchConfig config_;
};

}  // namespace apollo::ml::search
