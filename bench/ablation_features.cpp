// Ablation: feature categories. Table I groups features into kernel,
// instruction, and application categories; this bench trains models on each
// category alone and on their combinations to show what each contributes
// (complements Figs. 8-9, which rank individual features).

#include <cstdio>

#include "bench/harness.hpp"
#include "core/features.hpp"
#include "ml/cross_validation.hpp"

using namespace apollo;

namespace {

std::vector<std::string> intersect(const std::vector<std::string>& wanted,
                                   const std::vector<std::string>& available) {
  std::vector<std::string> result;
  for (const auto& name : wanted) {
    if (std::find(available.begin(), available.end(), name) != available.end()) {
      result.push_back(name);
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::print_heading("Model accuracy by Table I feature category", "Table I ablation");

  // Category definitions straight from the feature schema.
  const std::vector<std::string> kernel_features = {"func", "func_size", "index_type", "loop_id",
                                                    "num_indices", "num_segments", "stride"};
  std::vector<std::string> instruction_features;
  for (std::size_t m = 0; m < instr::kMnemonicCount; ++m) {
    instruction_features.emplace_back(instr::mnemonic_name(static_cast<instr::Mnemonic>(m)));
  }
  const std::vector<std::string> app_features = features::app_feature_names();

  bench::print_row({"features used", "LULESH", "CleverLeaf", "ARES"}, {30, 10, 12, 10});

  std::vector<std::pair<std::string, std::vector<std::string>>> categories;
  categories.emplace_back("kernel only", kernel_features);
  categories.emplace_back("instruction only", instruction_features);
  categories.emplace_back("application only", app_features);
  {
    std::vector<std::string> kernel_app = kernel_features;
    kernel_app.insert(kernel_app.end(), app_features.begin(), app_features.end());
    categories.emplace_back("kernel + application", kernel_app);
  }

  std::vector<std::vector<std::string>> table(categories.size() + 1);
  for (std::size_t c = 0; c < categories.size(); ++c) table[c].push_back(categories[c].first);
  table.back().push_back("all (Table I)");

  for (auto& app : apps::make_all_applications()) {
    Runtime::instance().reset();
    const auto records = bench::record_training(*app, 4, /*with_chunks=*/false);
    const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Policy);
    const ml::Dataset sampled = bench::subsample(data.dataset, 8000, 5);

    for (std::size_t c = 0; c < categories.size(); ++c) {
      const auto subset = intersect(categories[c].second, sampled.feature_names());
      if (subset.empty()) {
        table[c].push_back("n/a");
        continue;
      }
      const auto cv =
          ml::cross_validate(sampled.select_features(subset), ml::TreeParams{}, 5, 42);
      table[c].push_back(bench::fmt(cv.mean_accuracy * 100, 1) + "%");
    }
    const auto all = ml::cross_validate(sampled, ml::TreeParams{}, 5, 42);
    table.back().push_back(bench::fmt(all.mean_accuracy * 100, 1) + "%");
  }

  for (const auto& row : table) bench::print_row(row, {30, 10, 12, 10});

  std::printf("\nShape: kernel features (num_indices above all) carry most of the signal;\n"
              "application features add input/timestep awareness; instruction features\n"
              "alone only distinguish kernel classes, not launch sizes.\n");
  return 0;
}
