#pragma once

// The trainer daemon: the server half of Apollo-as-a-service.
//
// N client processes stream dictionary-coded sample batches to one daemon;
// the daemon shards accumulation per kernel (a bounded deque of the newest
// samples per loop_id), trains on the aggregate with the same core Trainer
// the in-process Retrainer uses, and pushes each new model generation to
// every connected client. One model trained on N clients' samples converges
// in ~1/N the per-client exploration the paper's per-process protocol pays —
// the 256-core strong-scaling story recast as a serving system.
//
// Threading: one accept thread, one serving thread per connection, one
// trainer thread. Shards and connection bookkeeping live behind one mutex
// (batch decode and model fits happen outside it); pushes and acks share a
// connection's FrameConn, which serializes its own writes. A malformed frame
// — bad CRC, truncated payload, oversized length, unknown type, protocol
// skew — disconnects that client only; the daemon and its other clients keep
// running, and nothing from the bad frame reaches a shard.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ml/decision_tree.hpp"
#include "perf/record.hpp"
#include "service/fleet_metrics.hpp"
#include "service/socket.hpp"
#include "service/wire.hpp"

namespace apollo::service {

struct DaemonConfig {
  std::string socket_path;
  /// New samples accumulated since the last fit that trigger the next one.
  std::size_t train_batch = 128;
  /// Aggregate samples required before the first fit.
  std::size_t min_train_samples = 64;
  /// Newest samples retained per kernel shard (bounds daemon memory).
  std::size_t per_kernel_cap = 8192;
  /// Also fit a chunk-size model when the aggregate has usable sweep data.
  bool train_chunk = false;
  ml::TreeParams tree_params;
  /// Fleet observability plane: merged metrics export, event log, SLOs.
  FleetConfig fleet;
};

class TrainerDaemon {
public:
  explicit TrainerDaemon(DaemonConfig config);
  ~TrainerDaemon();

  TrainerDaemon(const TrainerDaemon&) = delete;
  TrainerDaemon& operator=(const TrainerDaemon&) = delete;

  /// Bind the socket and start the accept + trainer threads. False (with the
  /// reason on stderr) when the socket cannot be bound.
  bool start();

  /// Close the listener and every connection, join all threads. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }

  struct Stats {
    std::uint64_t clients_connected = 0;
    std::uint64_t clients_total = 0;
    std::uint64_t batches_received = 0;
    std::uint64_t samples_received = 0;
    std::uint64_t frames_rejected = 0;
    std::uint64_t trains_completed = 0;
    std::uint64_t trains_failed = 0;
    std::uint64_t generation = 0;
    std::uint64_t pushes_sent = 0;
    std::uint64_t telemetry_snapshots = 0;  ///< TELEMETRY frames merged
    std::uint64_t slo_breaches = 0;         ///< staleness SLO breach episodes
    std::map<std::string, std::uint64_t> per_kernel_samples;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::uint64_t generation() const;

  /// The fleet observability plane (per-client views, merged snapshot).
  [[nodiscard]] FleetMetrics& fleet() noexcept { return fleet_; }
  [[nodiscard]] const FleetMetrics& fleet() const noexcept { return fleet_; }

  /// Which (client, batch seq) pairs fed a trained generation (the last
  /// kLineageHistory generations are retained). Empty when unknown.
  [[nodiscard]] std::vector<LineageEntry> lineage(std::uint64_t generation) const;

  /// Block until `generation()` >= `at_least` or `timeout_s` elapses (tests
  /// and benches; the serving path never waits on training).
  bool wait_generation(std::uint64_t at_least, double timeout_s);

private:
  struct Connection {
    FrameConn conn;
    std::uint64_t id = 0;
    bool helloed = false;
    std::string client_name;
  };

  /// One retained sample plus the batch that carried it — what lets a
  /// trained generation name its exact lineage.
  struct ShardEntry {
    perf::SampleRecord record;
    std::uint64_t client_id = 0;
    std::uint64_t batch_seq = 0;
  };

  /// Trained generations whose lineage is kept for lineage() lookups.
  static constexpr std::size_t kLineageHistory = 64;

  void accept_loop();
  void serve(std::shared_ptr<Connection> connection);
  void trainer_loop();
  /// Decode + shard one batch; returns accepted count or -1 on a protocol
  /// violation (caller disconnects).
  std::int64_t ingest_batch(std::uint64_t client_id, std::string_view payload,
                            std::uint64_t* seq);
  void push_generation(Connection& connection);
  void train_once();
  [[nodiscard]] StatsFrame stats_frame() const;

  DaemonConfig config_;
  int listen_fd_ = -1;
  bool running_ = false;

  mutable std::mutex mutex_;
  std::condition_variable train_cv_;      ///< wakes the trainer thread
  std::condition_variable generation_cv_; ///< wakes wait_generation
  bool stopping_ = false;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::map<std::string, std::deque<ShardEntry>> shards_;
  std::size_t total_samples_ = 0;       ///< currently retained across shards
  std::size_t since_last_train_ = 0;
  Stats stats_{};
  /// The latest trained generation, pre-encoded once for pushing.
  std::string push_payload_;
  std::uint64_t generation_ = 0;
  std::map<std::uint64_t, std::vector<LineageEntry>> lineage_by_generation_;
  FleetMetrics fleet_;

  std::thread accept_thread_;
  std::thread trainer_thread_;
  std::vector<std::thread> serve_threads_;
};

}  // namespace apollo::service
