#pragma once

// Analytic machine model: the testbed substitute.
//
// The paper's experiments ran on dedicated nodes with two Intel E5-2670
// "Sandy Bridge" CPUs (16 cores, 2.6 GHz, 51.2 GB/s). This host has a single
// core, so OpenMP can never win in wall-clock here. The model below prices a
// kernel invocation under a given execution policy the way that node would
// have: sequential cost scales with per-iteration work; OpenMP adds a fixed
// region fork/join cost plus per-block scheduling, false sharing for tiny
// chunks, and load imbalance for huge ones; memory-bound kernels saturate
// socket bandwidth. Kernels still *execute* for real — only the recorded
// runtime comes from here (DESIGN.md substitution 1).
//
// Calibration anchor: with the default config, a compute-light kernel's
// sequential/OpenMP crossover sits near 2e4 iterations — the paper's own
// example decision tree (Fig. 4) splits seq/omp at num_indices = 19 965.5.

#include <cstdint>

#include "instr/mix.hpp"

namespace apollo::sim {

/// Execution-policy alternatives priced by the model (the paper's tuned
/// parameter values: {Sequential, OpenMP} × chunk size).
enum class PolicyKind : std::uint8_t { Sequential, OpenMP };

struct MachineConfig {
  unsigned cores = 16;               ///< 2 sockets x 8 cores
  double clock_ghz = 2.6;            ///< core frequency
  double total_bandwidth_gbs = 51.2; ///< node memory bandwidth
  double core_bandwidth_gbs = 6.4;   ///< what one core alone can stream
  double llc_bytes = 40.0 * 1024 * 1024;  ///< combined L3
  double cache_bandwidth_boost = 4.0;     ///< streaming speedup when LLC-resident

  double seq_dispatch_ns = 40.0;     ///< loop setup for a sequential forall
  double omp_region_us = 12.0;       ///< OpenMP parallel-region fork/join cost
  double omp_per_thread_ns = 150.0;  ///< extra per-thread wakeup cost
  double chunk_dispatch_ns = 32.0;   ///< static-schedule per-block bookkeeping
  double barrier_per_thread_ns = 45.0;
  double false_share_ns = 160.0;     ///< per block when a chunk spans < 1 cache line
  double segment_overhead_ns = 25.0; ///< per IndexSet segment

  // Effective (throughput) cycle costs per retired instruction class on an
  // out-of-order 4-wide core, not latencies.
  double cycles_per_fp = 0.4;
  double cycles_per_div = 7.0;       ///< divsd/sqrtsd pipelined throughput class
  double cycles_per_mem_op = 0.3;    ///< issue cost; bandwidth handled separately
  double cycles_per_other = 0.2;

  double noise_sigma = 0.06;         ///< lognormal measurement noise (relative)

  /// Amplitude of each kernel's deterministic locality response to the
  /// static chunk size (cache/prefetch sweet spots differ per kernel body).
  /// Systematic — unlike noise — so chunk-size models can learn it.
  double chunk_locality_amplitude = 0.25;

  /// OpenMP team-wake cost drifts over a run (idle threads decay into deeper
  /// sleep states depending on recent activity): the region cost oscillates
  /// by this fraction with period `drift_period_steps` of the `epoch` input.
  /// Makes the seq/omp crossover timestep-dependent, as the paper observes.
  double spawn_drift_amplitude = 0.6;
  double drift_period_steps = 8.0;

  /// Data-dependent execution cost: branchy kernel bodies run faster or
  /// slower depending on the values they process (limiter branches, denormal
  /// operands), which correlates with the input deck. Deterministic per
  /// (kernel, context) pair, so problem identity is a learnable feature.
  double data_sensitivity = 0.25;
};

/// Everything the model needs to price one kernel invocation.
struct CostQuery {
  std::int64_t num_indices = 0;      ///< total iterations in the IndexSet
  std::int64_t num_segments = 1;
  instr::InstructionMix mix;         ///< kernel-body instruction mix
  std::int64_t bytes_per_iteration = 0;
  PolicyKind policy = PolicyKind::Sequential;
  unsigned threads = 16;             ///< OpenMP team size
  std::int64_t chunk = 0;            ///< static chunk; <=0 = OpenMP default N/t
  std::uint64_t kernel_seed = 0;     ///< kernel identity (hash of loop_id); 0 = generic
  std::uint64_t context_seed = 0;    ///< input/problem identity; 0 = generic
  double epoch = -1.0;               ///< current timestep; <0 = no drift
};

class MachineModel {
public:
  explicit MachineModel(MachineConfig config = {}) : config_(config) {}

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }

  /// Deterministic modeled runtime in seconds.
  [[nodiscard]] double cost_seconds(const CostQuery& query) const;

  /// Modeled runtime with multiplicative lognormal measurement noise; the
  /// noise is a pure function of `sample_id`, so replays are reproducible.
  [[nodiscard]] double measured_seconds(const CostQuery& query, std::uint64_t sample_id) const;

  /// Seconds of useful work per iteration for this kernel on one core
  /// (exposed for tests and for the cluster model).
  [[nodiscard]] double iteration_seconds(const CostQuery& query, unsigned active_threads) const;

private:
  MachineConfig config_;
};

/// Deterministic unit-lognormal-ish multiplier derived from a 64-bit id
/// (splitmix64 hash -> approximately normal via sum of uniforms).
[[nodiscard]] double noise_multiplier(std::uint64_t sample_id, double sigma) noexcept;

}  // namespace apollo::sim
