// Tests for decision-tree -> C++ code generation, including the full
// compile-to-shared-object-and-dlopen deployment path (§III-C).

#include <gtest/gtest.h>

#include <filesystem>
#include <random>

#include "ml/codegen.hpp"
#include "ml/decision_tree.hpp"

using apollo::ml::CompiledPredictor;
using apollo::ml::Dataset;
using apollo::ml::DecisionTree;
using apollo::ml::generate_cpp;
using apollo::ml::generate_tuner_cpp;
using apollo::ml::TreeParams;

namespace {

DecisionTree trained_tree() {
  Dataset d({"num_indices", "func_size"}, {"seq", "omp"});
  std::mt19937 rng(21);
  std::uniform_real_distribution<double> size_dist(1, 100000);
  for (int i = 0; i < 500; ++i) {
    const double n = size_dist(rng);
    const double fs = size_dist(rng) / 1000.0;
    d.add_row({n, fs}, n > 19965.5 ? 1 : 0);
  }
  TreeParams p;
  p.min_samples_leaf = 1;
  return DecisionTree::fit(d, p);
}

}  // namespace

TEST(Codegen, GeneratedSourceStructure) {
  const DecisionTree tree = trained_tree();
  const std::string source = generate_cpp(tree, "apollo_predict");
  EXPECT_NE(source.find("extern \"C\" int apollo_predict(const double* features)"),
            std::string::npos);
  EXPECT_NE(source.find("if (features[0] <="), std::string::npos);
  EXPECT_NE(source.find("return 0;"), std::string::npos);
  EXPECT_NE(source.find("return 1;"), std::string::npos);
  EXPECT_NE(source.find("num_indices"), std::string::npos);  // feature map comment
}

TEST(Codegen, EmptyTreeGeneratesDefaultReturn) {
  const DecisionTree tree;
  const std::string source = generate_cpp(tree, "empty_model");
  EXPECT_NE(source.find("return 0;"), std::string::npos);
}

TEST(Codegen, TunerStyleSourceAssignsSelection) {
  const DecisionTree tree = trained_tree();
  const std::string source = generate_tuner_cpp(tree, "apollo_begin_forall_iset");
  EXPECT_NE(source.find("void apollo_begin_forall_iset"), std::string::npos);
  EXPECT_NE(source.find("p.selection = 0;  // seq"), std::string::npos);
  EXPECT_NE(source.find("p.selection = 1;  // omp"), std::string::npos);
}

TEST(Codegen, CompiledPredictorMatchesInterpreter) {
  const DecisionTree tree = trained_tree();
  const std::string source = generate_cpp(tree, "apollo_test_model");
  const std::string dir =
      (std::filesystem::temp_directory_path() / "apollo_codegen_test").string();
  std::filesystem::create_directories(dir);

  const CompiledPredictor predictor =
      CompiledPredictor::compile(source, "apollo_test_model", dir);
  ASSERT_TRUE(predictor.valid());

  std::mt19937 rng(77);
  std::uniform_real_distribution<double> dist(0, 120000);
  for (int i = 0; i < 2000; ++i) {
    const double features[2] = {dist(rng), dist(rng) / 1000.0};
    EXPECT_EQ(predictor.predict(features), tree.predict(features)) << "sample " << i;
  }
  std::filesystem::remove_all(dir);
}

TEST(Codegen, CompileFailureThrows) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "apollo_codegen_bad").string();
  std::filesystem::create_directories(dir);
  EXPECT_THROW((void)CompiledPredictor::compile("this is not C++", "broken", dir),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Codegen, UnloadedPredictorThrows) {
  const CompiledPredictor predictor;
  EXPECT_FALSE(predictor.valid());
  const double f[1] = {0.0};
  EXPECT_THROW((void)predictor.predict(f), std::runtime_error);
}

TEST(Codegen, MoveTransfersOwnership) {
  const DecisionTree tree = trained_tree();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "apollo_codegen_move").string();
  std::filesystem::create_directories(dir);
  CompiledPredictor a =
      CompiledPredictor::compile(generate_cpp(tree, "move_model"), "move_model", dir);
  CompiledPredictor b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
  const double f[2] = {100.0, 1.0};
  EXPECT_EQ(b.predict(f), tree.predict(f));
  std::filesystem::remove_all(dir);
}
