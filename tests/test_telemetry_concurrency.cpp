// Concurrency tests for the telemetry hot path, written to run under
// ThreadSanitizer: producer threads trace and count while the collector side
// drains concurrently. The accounting contract is exact — every push attempt
// is either drained or counted as a ring drop, never lost silently.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace telemetry = apollo::telemetry;

namespace {
constexpr int kThreads = 8;
constexpr std::uint64_t kEventsPerThread = 20000;
}  // namespace

TEST(TelemetryConcurrency, DrainedPlusDroppedEqualsPushed) {
  telemetry::set_enabled(false);
  telemetry::stop_collector();
  telemetry::reset_for_testing();

  auto& tracer = telemetry::Tracer::instance();
  tracer.set_ring_capacity(256);  // small rings force overflow under load
  const char* name = tracer.intern("concurrency:events");
  auto& counter = telemetry::MetricsRegistry::instance().counter(
      "test_concurrency_total", "Events attempted by the concurrency test.");

  std::atomic<bool> stop{false};
  std::vector<telemetry::TraceEvent> drained;
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      tracer.drain(drained);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        telemetry::TraceEvent event;
        event.ts_ns = (static_cast<std::uint64_t>(t) << 32) | i;
        event.dur_ns = 1;
        event.name = name;
        event.kind = telemetry::EventKind::Launch;
        tracer.emit(event);
        counter.inc();
      }
    });
  }
  for (auto& thread : producers) thread.join();
  stop.store(true, std::memory_order_release);
  drainer.join();
  // Final sweep: anything still sitting in the rings after the drainer saw
  // the stop flag.
  tracer.drain(drained);

  const std::uint64_t attempted = kThreads * kEventsPerThread;
  EXPECT_EQ(counter.value(), attempted);
  EXPECT_EQ(drained.size() + tracer.dropped(), attempted);
  EXPECT_GT(drained.size(), 0u);

  // Per-producer FIFO survives the concurrent drain: for any thread, drained
  // sequence numbers appear in increasing order.
  std::vector<std::uint64_t> last(kThreads, 0);
  std::vector<bool> seen(kThreads, false);
  for (const auto& event : drained) {
    const auto t = static_cast<std::size_t>(event.ts_ns >> 32);
    const std::uint64_t seq = event.ts_ns & 0xffffffffu;
    ASSERT_LT(t, static_cast<std::size_t>(kThreads));
    if (seen[t]) {
      EXPECT_GT(seq, last[t]);
    }
    last[t] = seq;
    seen[t] = true;
  }

  telemetry::reset_for_testing();
}

TEST(TelemetryConcurrency, MetricsStayExactUnderContention) {
  telemetry::reset_for_testing();
  auto& registry = telemetry::MetricsRegistry::instance();
  auto& counter = registry.counter("test_contended_total", "Contended counter.");
  auto& gauge = registry.gauge("test_contended_gauge", "Contended gauge.");
  auto& hist = registry.histogram("test_contended_seconds", "Contended histogram.",
                                  telemetry::duration_bounds());

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kEventsPerThread; ++i) {
        counter.inc();
        gauge.add(1.0);
        hist.observe(1e-6);
      }
    });
  }
  for (auto& thread : workers) thread.join();

  const std::uint64_t total = kThreads * kEventsPerThread;
  EXPECT_EQ(counter.value(), total);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(total));
  EXPECT_EQ(hist.count(), total);

  // Registry lookups race against updates (new series created while other
  // threads expose): exercised here so TSan sees the interleaving.
  std::thread reader([&] {
    for (int i = 0; i < 50; ++i) (void)registry.expose();
  });
  std::thread creator([&] {
    for (int i = 0; i < 50; ++i) {
      registry
          .counter("test_contended_total", "Contended counter.",
                   "worker=\"" + std::to_string(i) + "\"")
          .inc();
    }
  });
  reader.join();
  creator.join();

  telemetry::reset_for_testing();
}
