// Unit tests for the CSV record exporter.

#include <gtest/gtest.h>

#include <sstream>

#include "perf/csv_export.hpp"

using namespace apollo::perf;

TEST(CsvQuote, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("123.5"), "123.5");
}

TEST(CsvQuote, SpecialCharactersQuoted) {
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_quote("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvExport, HeaderIsUnionOfKeys) {
  std::vector<SampleRecord> records(2);
  records[0]["alpha"] = 1;
  records[0]["beta"] = 2.5;
  records[1]["beta"] = 3.0;
  records[1]["gamma"] = "text";
  std::ostringstream out;
  write_records_csv(out, records);
  std::istringstream in(out.str());
  std::string header, row1, row2;
  std::getline(in, header);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(header, "alpha,beta,gamma");
  EXPECT_EQ(row1, "1,2.5,");
  EXPECT_EQ(row2, ",3,text");
}

TEST(CsvExport, EmptyRecordListGivesEmptyHeader) {
  std::ostringstream out;
  write_records_csv(out, {});
  EXPECT_EQ(out.str(), "\n");
}

TEST(CsvExport, CommaInStringValueStaysOneCell) {
  std::vector<SampleRecord> records(1);
  records[0]["name"] = "a,b";
  std::ostringstream out;
  write_records_csv(out, records);
  EXPECT_NE(out.str().find("\"a,b\""), std::string::npos);
}
