#include "ml/search/two_stage.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace apollo::ml::search {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Candidate pool ranked by the cheap model before diversification: wide
/// enough that diversification has real choices, narrow enough that seeds
/// stay inside the model's plausible region.
constexpr std::size_t kSeedPoolFactor = 4;

}  // namespace

std::size_t TwoStageSearch::effective_budget(std::size_t space_size,
                                             std::size_t anchor_count) const {
  std::size_t budget = config_.budget;
  if (budget == 0) {
    const double fraction = std::clamp(config_.budget_fraction, 0.0, 1.0);
    budget = static_cast<std::size_t>(std::ceil(fraction * static_cast<double>(space_size)));
  }
  // The trainer's labelling rules need the anchors plus at least one
  // alternative; a budget below that would produce unusable data.
  budget = std::max(budget, anchor_count + 2);
  return std::min(budget, space_size);
}

Point TwoStageSearch::crossover(const Point& a, const Point& b, Rng& rng) {
  Point child(a.size());
  for (std::size_t l = 0; l < a.size(); ++l) {
    child[l] = (rng.next() & 1u) != 0 ? a[l] : (l < b.size() ? b[l] : a[l]);
  }
  return child;
}

std::size_t TwoStageSearch::step_for_generation(std::size_t lane_extent, std::size_t generation) {
  std::size_t step = lane_extent;
  for (std::size_t g = 0; g <= generation; ++g) step /= 2;
  return std::max<std::size_t>(step, 1);
}

Point TwoStageSearch::mutate(const Space& space, Point point, std::size_t max_step, Rng& rng) {
  // Mutate one mandatory lane plus each other lane with probability 1/lanes:
  // expected ~2 lane moves per child, never a silent no-op clone.
  const std::size_t lanes = space.lane_count();
  const std::size_t forced = rng.below(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    if (l != forced && rng.below(lanes) != 0) continue;
    const std::size_t extent = space.lane(l).values.size();
    if (extent <= 1) continue;
    const std::size_t step = 1 + rng.below(std::min(max_step, extent - 1));
    const bool up = (rng.next() & 1u) != 0;
    if (up) {
      point[l] = std::min(point[l] + step, extent - 1);
    } else {
      point[l] = point[l] >= step ? point[l] - step : 0;
    }
  }
  return point;
}

std::size_t TwoStageSearch::tournament_select(const std::vector<double>& fitness,
                                              std::size_t tournament, Rng& rng) {
  std::size_t best = rng.below(fitness.size());
  for (std::size_t t = 1; t < std::max<std::size_t>(tournament, 1); ++t) {
    const std::size_t challenger = rng.below(fitness.size());
    if (fitness[challenger] < fitness[best]) best = challenger;
  }
  return best;
}

std::vector<Point> TwoStageSearch::diversify(const Space& space, const std::vector<Point>& ranked,
                                             std::size_t count) {
  std::vector<Point> picked;
  if (ranked.empty() || count == 0) return picked;
  picked.push_back(ranked.front());  // the model's favourite always seeds
  std::vector<bool> used(ranked.size(), false);
  used[0] = true;
  while (picked.size() < count && picked.size() < ranked.size()) {
    std::size_t best_candidate = kNone;
    std::size_t best_distance = 0;
    for (std::size_t c = 0; c < ranked.size(); ++c) {
      if (used[c]) continue;
      std::size_t nearest = std::numeric_limits<std::size_t>::max();
      for (const auto& point : picked) {
        nearest = std::min(nearest, Space::distance(ranked[c], point));
      }
      // Strict > keeps ties on the better-ranked (earlier) candidate.
      if (best_candidate == kNone || nearest > best_distance) {
        best_candidate = c;
        best_distance = nearest;
      }
    }
    if (best_candidate == kNone) break;
    used[best_candidate] = true;
    picked.push_back(ranked[best_candidate]);
  }
  (void)space;
  return picked;
}

Result TwoStageSearch::run(const Space& space, const CheapFn& cheap, const MeasureFn& measure,
                           const std::vector<Point>& anchors,
                           const CanonicalFn& canonical) const {
  Result result;
  Rng rng(config_.seed);
  const std::size_t budget = effective_budget(space.size(), anchors.size());
  const auto key_of = [&](const Point& point) -> std::uint64_t {
    return canonical ? canonical(point) : static_cast<std::uint64_t>(space.encode(point));
  };

  // Measured configurations, deduped on the canonical key. Returns the index
  // into result.measurements, or kNone when the budget is exhausted.
  std::unordered_map<std::uint64_t, std::size_t> seen;
  double best_mean = std::numeric_limits<double>::infinity();
  const auto measure_config = [&](const Point& point) -> std::size_t {
    const auto found = seen.find(key_of(point));
    if (found != seen.end()) {
      ++result.stats.cache_hits;
      return found->second;
    }
    if (result.stats.measured >= budget) {
      result.stats.budget_exhausted = true;
      return kNone;
    }
    ++result.stats.measured;
    Measurement m;
    m.point = point;
    double sum = 0.0;
    const std::size_t samples = std::max<std::size_t>(config_.samples_per_config, 1);
    for (std::size_t s = 0; s < samples; ++s) {
      sum += measure(point);
      m.samples = s + 1;
      // Dominance early-abort: once the partial mean is already hopeless
      // against the best full mean, further samples cannot make this
      // configuration the winner — stop paying for them.
      const double partial = sum / static_cast<double>(m.samples);
      if (m.samples < samples && std::isfinite(best_mean) &&
          partial > config_.abort_margin * best_mean) {
        m.aborted = true;
        ++result.stats.aborted;
        break;
      }
    }
    m.seconds = sum / static_cast<double>(m.samples);
    if (!m.aborted && m.seconds < best_mean) best_mean = m.seconds;
    const std::size_t index = result.measurements.size();
    seen.emplace(key_of(point), index);
    result.measurements.push_back(std::move(m));
    return index;
  };

  // Anchors first: the trainer's labelling rules depend on them existing.
  for (const auto& anchor : anchors) (void)measure_config(anchor);

  // --- stage 1: model-seeded ------------------------------------------------
  // Rank the whole space with the free deterministic objective, then measure
  // a diversified top-K. The full enumeration is intentional: the cheap
  // objective is an analytic formula, so even the enlarged spaces this layer
  // exists for (10^3..10^5 points) rank in microseconds.
  std::vector<std::size_t> order(space.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<double> model_cost(space.size());
  for (std::size_t i = 0; i < space.size(); ++i) model_cost[i] = cheap(space.decode(i));
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return model_cost[a] < model_cost[b]; });

  const std::size_t seed_k = std::max<std::size_t>(config_.seed_k, 1);
  std::vector<Point> pool;
  pool.reserve(std::min(space.size(), seed_k * kSeedPoolFactor));
  for (std::size_t i = 0; i < order.size() && pool.size() < seed_k * kSeedPoolFactor; ++i) {
    pool.push_back(space.decode(order[i]));
  }
  const std::vector<Point> seeds = diversify(space, pool, seed_k);
  std::vector<std::size_t> population;
  for (const auto& seed : seeds) {
    const std::size_t index = measure_config(seed);
    if (index == kNone) break;
    population.push_back(index);
    ++result.stats.seeded;
  }
  // Anchors compete as population members too — they are real measurements.
  for (std::size_t i = 0; i < anchors.size() && i < result.measurements.size(); ++i) {
    if (std::find(population.begin(), population.end(), i) == population.end()) {
      population.push_back(i);
    }
  }

  // --- stage 2: evolutionary refinement ------------------------------------
  const std::size_t pop_size = config_.population > 0 ? config_.population : seed_k;
  for (std::size_t gen = 0; gen < config_.generations && !result.stats.budget_exhausted; ++gen) {
    if (population.size() < 2) break;
    std::vector<double> fitness(population.size());
    for (std::size_t p = 0; p < population.size(); ++p) {
      fitness[p] = result.measurements[population[p]].seconds;
    }
    std::vector<std::size_t> offspring;
    for (std::size_t child = 0; child < pop_size; ++child) {
      const Point& parent_a =
          result.measurements[population[tournament_select(fitness, config_.tournament, rng)]]
              .point;
      const Point& parent_b =
          result.measurements[population[tournament_select(fitness, config_.tournament, rng)]]
              .point;
      Point candidate = crossover(parent_a, parent_b, rng);
      // Per-lane step schedule: generation g may move an index by up to
      // extent/2^(g+1), so early generations explore and late ones refine.
      std::size_t max_step = 1;
      for (std::size_t l = 0; l < space.lane_count(); ++l) {
        max_step = std::max(max_step, step_for_generation(space.lane(l).values.size(), gen));
      }
      candidate = mutate(space, std::move(candidate), max_step, rng);
      const std::size_t index = measure_config(candidate);
      if (index == kNone) break;  // budget exhausted mid-generation
      offspring.push_back(index);
    }
    // Elitist survival: parents and offspring compete for pop_size slots.
    population.insert(population.end(), offspring.begin(), offspring.end());
    std::sort(population.begin(), population.end());
    population.erase(std::unique(population.begin(), population.end()), population.end());
    std::stable_sort(population.begin(), population.end(), [&](std::size_t a, std::size_t b) {
      return result.measurements[a].seconds < result.measurements[b].seconds;
    });
    if (population.size() > pop_size) population.resize(pop_size);
  }

  for (const auto& m : result.measurements) {
    if (m.seconds < result.best_seconds) {
      result.best_seconds = m.seconds;
      result.best = m.point;
    }
  }
  result.stats.skipped = space.size() - std::min(result.stats.measured, space.size());
  return result;
}

}  // namespace apollo::ml::search
