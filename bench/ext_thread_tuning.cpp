// Extension: tuning the OpenMP team size as a third parameter (the paper's
// conclusion anticipates "a larger number of tuning parameters"). Training
// sweeps record team sizes {2,4,8,16} at the default schedule; the trained
// model picks smaller teams for launches whose fork/join cost would not
// amortize a full 16-thread team.

#include <cstdio>
#include <map>

#include "bench/harness.hpp"
#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"

using namespace apollo;

int main() {
  bench::print_heading("Team-size tuning (third parameter)",
                       "extension: conclusion's multi-parameter direction");

  Runtime::instance().reset();
  auto& rt = Runtime::instance();
  auto app = apps::make_lulesh();

  rt.set_mode(Mode::Record);
  rt.set_execute_selected(false);
  TrainingConfig cfg;
  cfg.chunk_values.clear();
  cfg.thread_values = {2, 4, 8, 16};
  rt.set_training_config(cfg);
  for (int size : app->training_sizes()) {
    app->run(apps::RunConfig{"sedov", size, 4});
  }
  const auto records = rt.records();
  rt.clear_records();
  rt.set_mode(Mode::Off);

  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Threads);
  std::printf("team-size corpus: %zu launch groups, labels:", data.dataset.num_rows());
  for (const auto& label : data.dataset.label_names()) std::printf(" %s", label.c_str());
  std::printf("\n");

  const auto cv = ml::cross_validate(bench::subsample(data.dataset, 8000, 3),
                                     ml::TreeParams{}, 10, 42);
  std::printf("10-fold accuracy: %.1f%%\n\n", cv.mean_accuracy * 100);

  // Winner distribution by launch-size decade.
  std::map<int, std::map<int, std::int64_t>> by_decade;  // log10 bucket -> label -> count
  const std::size_t ni = data.dataset.feature_index("num_indices");
  for (std::size_t r = 0; r < data.dataset.num_rows(); ++r) {
    const double n = data.dataset.row(r)[ni];
    const int decade = n < 10 ? 1 : (n < 100 ? 2 : (n < 1000 ? 3 : (n < 10000 ? 4 : (n < 100000 ? 5 : 6))));
    by_decade[decade][data.dataset.label(r)] += data.row_counts[r];
  }
  bench::print_row({"num_indices", "team=2", "team=4", "team=8", "team=16"}, {14, 8, 8, 8, 8});
  const char* ranges[] = {"", "<10", "10-100", "100-1k", "1k-10k", "10k-100k", ">100k"};
  for (const auto& [decade, counts] : by_decade) {
    std::vector<std::string> cells{ranges[decade]};
    for (int label = 0; label < 4; ++label) {
      auto it = counts.find(label);
      cells.push_back(std::to_string(it != counts.end() ? it->second : 0));
    }
    bench::print_row(cells, {14, 8, 8, 8, 8});
  }

  // Runtime impact: model-chosen team vs always-16 (both at OpenMP).
  const double oracle = data.total_runtime_oracle();
  const auto& labels = data.dataset.label_names();
  const int full_team = static_cast<int>(
      std::find(labels.begin(), labels.end(), "16") - labels.begin());
  const ml::DecisionTree tree = ml::DecisionTree::fit(data.dataset);
  const double predicted = data.total_runtime_predicted(tree.predict_all(data.dataset));
  std::printf("\nOpenMP-kernel time: always-16-threads %.3f ms, model-chosen team %.3f ms,\n"
              "best possible %.3f ms\n",
              data.total_runtime_static(full_team) * 1e3, predicted * 1e3, oracle * 1e3);
  std::printf("\nShape: small launches prefer small teams (less fork/join), wide launches\n"
              "the full team; a third parameter drops into the pipeline unchanged.\n");
  return 0;
}
