// Unit tests for k-fold cross-validation.

#include <gtest/gtest.h>

#include <random>

#include "ml/cross_validation.hpp"

using apollo::ml::cross_validate;
using apollo::ml::Dataset;
using apollo::ml::TreeParams;

namespace {

Dataset noisy_separable(int n, double flip_fraction, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0, 1);
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < n; ++i) {
    const double x = dist(rng), y = dist(rng);
    int label = x > 0.5 ? 1 : 0;
    if (dist(rng) < flip_fraction) label = 1 - label;
    d.add_row({x, y}, label);
  }
  return d;
}

}  // namespace

TEST(CrossValidation, HighAccuracyOnCleanData) {
  const auto result = cross_validate(noisy_separable(500, 0.0, 1), TreeParams{}, 10, 42);
  EXPECT_GT(result.mean_accuracy, 0.95);
  EXPECT_EQ(result.fold_accuracies.size(), 10u);
  EXPECT_LE(result.min_accuracy, result.mean_accuracy);
  EXPECT_GE(result.max_accuracy, result.mean_accuracy);
}

TEST(CrossValidation, NoiseLowersAccuracy) {
  const auto clean = cross_validate(noisy_separable(600, 0.0, 2), TreeParams{}, 5, 42);
  const auto noisy = cross_validate(noisy_separable(600, 0.3, 2), TreeParams{}, 5, 42);
  EXPECT_GT(clean.mean_accuracy, noisy.mean_accuracy);
  // 30% label flips cap achievable held-out accuracy around 70%.
  EXPECT_LT(noisy.mean_accuracy, 0.85);
}

TEST(CrossValidation, DeterministicPerSeed) {
  const auto a = cross_validate(noisy_separable(300, 0.1, 3), TreeParams{}, 5, 7);
  const auto b = cross_validate(noisy_separable(300, 0.1, 3), TreeParams{}, 5, 7);
  EXPECT_EQ(a.fold_accuracies, b.fold_accuracies);
}

TEST(CrossValidation, MeanIsAverageOfFolds) {
  const auto result = cross_validate(noisy_separable(200, 0.05, 4), TreeParams{}, 4, 1);
  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  EXPECT_NEAR(result.mean_accuracy, sum / 4.0, 1e-12);
}

TEST(CrossValidation, TooFewRowsThrows) {
  Dataset d({"x"}, {"a"});
  d.add_row({1.0}, 0);
  d.add_row({2.0}, 0);
  EXPECT_THROW((void)cross_validate(d, TreeParams{}, 10, 0), std::invalid_argument);
}

TEST(CrossValidation, RespectsTreeParams) {
  // A depth-1 tree cannot learn the XOR-ish checkerboard; deep trees can.
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> dist(0, 1);
  Dataset d({"x", "y"}, {"a", "b"});
  for (int i = 0; i < 800; ++i) {
    const double x = dist(rng), y = dist(rng);
    d.add_row({x, y}, (x - 0.5) * (y - 0.5) > 0 ? 1 : 0);
  }
  TreeParams shallow;
  shallow.max_depth = 1;
  TreeParams deep;
  deep.max_depth = 8;
  const auto s = cross_validate(d, shallow, 5, 9);
  const auto dp = cross_validate(d, deep, 5, 9);
  EXPECT_LT(s.mean_accuracy, 0.7);
  EXPECT_GT(dp.mean_accuracy, 0.9);
}
