#include "core/search_support.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "core/features.hpp"
#include "instr/mix.hpp"

namespace apollo {

ml::search::Space make_variant_space(const std::vector<std::int64_t>& chunk_values,
                                     const std::vector<unsigned>& thread_values) {
  std::vector<ml::search::Lane> lanes;
  lanes.push_back({"policy", {0, 1}});  // 0 = seq, 1 = omp
  ml::search::Lane chunk_lane{"chunk", {0}};
  for (const std::int64_t chunk : chunk_values) chunk_lane.values.push_back(chunk);
  lanes.push_back(std::move(chunk_lane));
  ml::search::Lane team_lane{"team", {0}};
  for (const unsigned team : thread_values) {
    team_lane.values.push_back(static_cast<std::int64_t>(team));
  }
  lanes.push_back(std::move(team_lane));
  return ml::search::Space(std::move(lanes));
}

SearchVariant variant_at(const ml::search::Space& space, const ml::search::Point& point) {
  if (space.value(point, 0) == 0) return {};  // sequential ignores chunk/team
  SearchVariant variant;
  variant.policy = raja::PolicyType::seq_segit_omp_parallel_for_exec;
  variant.chunk = space.value(point, 1);
  variant.team = static_cast<unsigned>(space.value(point, 2));
  return variant;
}

std::uint64_t canonical_variant_key(const ml::search::Space& space,
                                    const ml::search::Point& point) {
  if (space.value(point, 0) == 0) return 0;
  return static_cast<std::uint64_t>(space.encode(point)) + 1;
}

ml::search::SearchConfig search_engine_config(const SearchOptions& options, std::uint64_t seed,
                                              std::size_t samples_per_config) {
  ml::search::SearchConfig config;
  config.budget = options.budget;
  config.budget_fraction = options.budget_fraction;
  config.seed_k = options.seed_k;
  config.generations = options.generations;
  config.samples_per_config = samples_per_config;
  config.seed = seed;
  return config;
}

sim::CostQuery query_from_record(const perf::SampleRecord& record) {
  sim::CostQuery query;
  const auto num = [&](const char* key, std::int64_t fallback) -> std::int64_t {
    const auto it = record.find(key);
    return it != record.end() ? it->second.as_int() : fallback;
  };
  query.num_indices = num(features::kNumIndices, 0);
  query.num_segments = std::max<std::int64_t>(num(features::kNumSegments, 1), 1);
  for (std::size_t m = 0; m < instr::kMnemonicCount; ++m) {
    const auto mnemonic = static_cast<instr::Mnemonic>(m);
    query.mix.set(mnemonic, num(instr::mnemonic_name(mnemonic), 0));
  }
  query.bytes_per_iteration = num(features::kMeasureBytesPerIter, 0);
  const auto loop = record.find(features::kLoopId);
  if (loop != record.end() && loop->second.is_string()) {
    query.kernel_seed = std::hash<std::string>{}(loop->second.as_string());
  }
  const auto problem = record.find(features::kProblemName);
  if (problem != record.end() && problem->second.is_string()) {
    query.context_seed = std::hash<std::string>{}(problem->second.as_string());
  }
  const auto step = record.find(features::kTimestep);
  if (step != record.end()) query.epoch = step->second.as_number();
  return query;
}

std::string search_group_key(const perf::SampleRecord& record) {
  std::string key;
  const auto append = [&](const char* name) {
    const auto it = record.find(name);
    if (it != record.end()) {
      key += it->second.is_string() ? it->second.as_string()
                                    : std::to_string(it->second.as_int());
    }
    key += '|';
  };
  append(features::kLoopId);
  append(features::kNumIndices);
  append(features::kNumSegments);
  append(features::kProblemName);
  return key;
}

}  // namespace apollo
