
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/amr_patch_tuning.cpp" "examples/CMakeFiles/amr_patch_tuning.dir/amr_patch_tuning.cpp.o" "gcc" "examples/CMakeFiles/amr_patch_tuning.dir/amr_patch_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/apollo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apollo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/apollo_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/apollo_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apollo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/apollo_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/apollo_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
