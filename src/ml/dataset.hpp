#pragma once

// Labeled datasets for the model-generation pipeline (the paper's
// pandas/NumPy stage, natively). Rows are dense double feature vectors;
// categorical features (problem name, index type, ...) are dictionary-encoded
// to doubles upstream. Labels are small integers naming the winning parameter
// value (execution policy or chunk size).

#include <cstdint>
#include <string>
#include <vector>

namespace apollo::ml {

class Dataset {
public:
  Dataset() = default;
  Dataset(std::vector<std::string> feature_names, std::vector<std::string> label_names)
      : feature_names_(std::move(feature_names)), label_names_(std::move(label_names)) {}

  void add_row(std::vector<double> features, int label);

  [[nodiscard]] std::size_t num_rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t num_features() const noexcept { return feature_names_.size(); }
  [[nodiscard]] std::size_t num_classes() const noexcept { return label_names_.size(); }

  [[nodiscard]] const std::vector<double>& row(std::size_t r) const { return rows_[r]; }
  [[nodiscard]] int label(std::size_t r) const { return labels_[r]; }
  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept { return feature_names_; }
  [[nodiscard]] const std::vector<std::string>& label_names() const noexcept { return label_names_; }

  /// New dataset keeping only the named feature columns (order preserved as
  /// given). Throws if a name is unknown.
  [[nodiscard]] Dataset select_features(const std::vector<std::string>& names) const;

  /// New dataset containing the given row indices.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& row_indices) const;

  /// Index of a feature name; throws if unknown.
  [[nodiscard]] std::size_t feature_index(const std::string& name) const;

private:
  std::vector<std::string> feature_names_;
  std::vector<std::string> label_names_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

/// Deterministic shuffled k-fold partition of [0, n): returns fold id per row.
[[nodiscard]] std::vector<int> kfold_assignment(std::size_t n, int folds, std::uint64_t seed);

/// Fraction of rows where `predicted == truth`.
[[nodiscard]] double accuracy(const std::vector<int>& predicted, const std::vector<int>& truth);

}  // namespace apollo::ml
