// apollo-train: the offline model-generation step as a standalone tool
// (the paper's Python package, as a CLI). Reads a training-record file
// produced by a Record-mode run, trains a decision-tree model, reports
// cross-validated accuracy and feature importances, and writes the
// deployable model file — optionally also the generated C++ tuner source.
//
// Usage:
//   apollo_train <records> <output.model>
//       [--parameter policy|chunk_size] [--max-depth N] [--top-features K]
//       [--folds N] [--per-kernel] [--codegen out.cpp] [--quiet]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <string>

#include "core/model_set.hpp"
#include "core/trainer.hpp"
#include "ml/codegen.hpp"
#include "ml/cross_validation.hpp"
#include "telemetry/build_info.hpp"

using namespace apollo;

namespace {

struct Options {
  std::string records_path;
  std::string model_path;
  TunedParameter parameter = TunedParameter::Policy;
  int max_depth = 25;
  int top_features = 0;  // 0 = all
  int folds = 10;
  bool per_kernel = false;
  bool quiet = false;
  std::string codegen_path;
};

void usage() {
  std::fprintf(stderr,
               "usage: apollo_train <records> <output.model>\n"
               "  [--parameter policy|chunk_size] [--max-depth N] [--top-features K]\n"
               "  [--folds N] [--per-kernel] [--codegen out.cpp] [--quiet]\n");
}

bool parse(int argc, char** argv, Options& options) {
  if (argc < 3) return false;
  options.records_path = argv[1];
  options.model_path = argv[2];
  for (int a = 3; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--parameter") {
      const char* value = next();
      if (value == nullptr) return false;
      options.parameter = std::strcmp(value, "chunk_size") == 0 ? TunedParameter::ChunkSize
                                                                : TunedParameter::Policy;
    } else if (arg == "--max-depth") {
      const char* value = next();
      if (value == nullptr) return false;
      options.max_depth = std::atoi(value);
    } else if (arg == "--top-features") {
      const char* value = next();
      if (value == nullptr) return false;
      options.top_features = std::atoi(value);
    } else if (arg == "--folds") {
      const char* value = next();
      if (value == nullptr) return false;
      options.folds = std::atoi(value);
    } else if (arg == "--per-kernel") {
      options.per_kernel = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--codegen") {
      const char* value = next();
      if (value == nullptr) return false;
      options.codegen_path = value;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", build_info_string().c_str());
    return 0;
  }
  Options options;
  if (!parse(argc, argv, options)) {
    usage();
    return 2;
  }

  try {
    const auto records = perf::read_records_file(options.records_path);
    if (!options.quiet) std::printf("read %zu samples from %s\n", records.size(), options.records_path.c_str());

    ml::TreeParams params;
    params.max_depth = options.max_depth;

    if (options.per_kernel) {
      const ModelSet set = ModelSet::train_per_kernel(records, options.parameter, params);
      set.save_file(options.model_path);
      if (!options.quiet) {
        std::printf("trained per-kernel model set: %zu kernel models, %zu total nodes -> %s\n",
                    set.size(), set.total_nodes(), options.model_path.c_str());
      }
      return 0;
    }

    LabeledData data = Trainer::build_labeled_data(records, options.parameter);
    if (options.top_features > 0) {
      // Rank by importance of a model over everything, then re-encode.
      const ml::DecisionTree full = ml::DecisionTree::fit(data.dataset, params);
      const auto importances = full.feature_importances();
      std::vector<std::size_t> order(importances.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return importances[a] > importances[b];
      });
      std::vector<std::string> keep;
      for (int f = 0; f < options.top_features && f < static_cast<int>(order.size()); ++f) {
        keep.push_back(data.dataset.feature_names()[order[static_cast<std::size_t>(f)]]);
      }
      data.dataset = data.dataset.select_features(keep);
    }

    const TunerModel model = Trainer::train(data, options.parameter, params);
    model.save_file(options.model_path);

    if (!options.quiet) {
      std::printf("trained %s model: depth=%d nodes=%zu rows=%zu -> %s\n",
                  tuned_parameter_name(options.parameter), model.tree().depth(),
                  model.tree().node_count(), data.dataset.num_rows(),
                  options.model_path.c_str());
      if (data.dataset.num_rows() >= static_cast<std::size_t>(options.folds)) {
        const auto cv = ml::cross_validate(data.dataset, params, options.folds, 42);
        std::printf("%d-fold cross-validated accuracy: %.1f%% (min %.1f%%, max %.1f%%)\n",
                    options.folds, cv.mean_accuracy * 100, cv.min_accuracy * 100,
                    cv.max_accuracy * 100);
      }
      const auto importances = model.tree().feature_importances();
      std::printf("top feature importances:\n");
      std::vector<std::size_t> order(importances.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return importances[a] > importances[b];
      });
      for (std::size_t f = 0; f < 5 && f < order.size(); ++f) {
        if (importances[order[f]] <= 0) break;
        std::printf("  %-20s %.3f\n", model.tree().feature_names()[order[f]].c_str(),
                    importances[order[f]]);
      }
    }

    if (!options.codegen_path.empty()) {
      std::ofstream out(options.codegen_path);
      if (!out) throw std::runtime_error("cannot open " + options.codegen_path);
      out << ml::generate_cpp(model.tree(), "apollo_generated_model");
      if (!options.quiet) std::printf("generated C++ tuner -> %s\n", options.codegen_path.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "apollo_train: %s\n", error.what());
    return 1;
  }
  return 0;
}
