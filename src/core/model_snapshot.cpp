#include "core/model_snapshot.hpp"

#include "core/features.hpp"
#include "core/kernel.hpp"
#include "perf/blackboard.hpp"
#include "raja/index_set.hpp"

namespace apollo {

CompiledModel CompiledModel::compile(TunerModel model) {
  using Source = CompiledFeature::Source;
  CompiledModel compiled;
  compiled.features_.reserve(model.tree().feature_names().size());
  for (const auto& name : model.tree().feature_names()) {
    CompiledFeature feature;
    if (name == features::kFunc) {
      feature.source = Source::Func;
    } else if (name == features::kFuncSize) {
      feature.source = Source::FuncSize;
    } else if (name == features::kIndexType) {
      feature.source = Source::IndexType;
    } else if (name == features::kLoopId) {
      feature.source = Source::LoopId;
    } else if (name == features::kNumIndices) {
      feature.source = Source::NumIndices;
    } else if (name == features::kNumSegments) {
      feature.source = Source::NumSegments;
    } else if (name == features::kStride) {
      feature.source = Source::Stride;
    } else {
      feature.source = Source::App;
      feature.key = name;
      for (std::size_t m = 0; m < instr::kMnemonicCount; ++m) {
        const auto mnemonic = static_cast<instr::Mnemonic>(m);
        if (name == instr::mnemonic_name(mnemonic)) {
          feature.source = Source::Mnemonic;
          feature.mnemonic = mnemonic;
          break;
        }
      }
    }
    auto dict_it = model.dictionaries().find(name);
    if (dict_it != model.dictionaries().end()) {
      for (std::size_t code = 0; code < dict_it->second.size(); ++code) {
        feature.dictionary.emplace(dict_it->second[code], static_cast<double>(code));
      }
    }
    compiled.features_.push_back(std::move(feature));
  }
  compiled.model_ = std::move(model);
  // Publish-time flat compilation. When the tree's shape exceeds the packed
  // layout this yields !ok() and every evaluation stays on the pointer walk —
  // the fallback is lossless, never approximate.
  compiled.flat_ = ml::FlatTree::compile(compiled.model_.tree());
  return compiled;
}

void CompiledModel::resolve_features(const KernelHandle& kernel, const raja::IndexSet& iset,
                                     std::vector<double>& scratch) const {
  using Source = CompiledFeature::Source;
  scratch.resize(features_.size());
  auto& board = perf::Blackboard::instance();
  for (std::size_t f = 0; f < features_.size(); ++f) {
    const CompiledFeature& feature = features_[f];
    double value = -1.0;
    const auto categorical = [&](const std::string& text) {
      auto it = feature.dictionary.find(text);
      return it != feature.dictionary.end() ? it->second : -1.0;
    };
    switch (feature.source) {
      case Source::Func: value = categorical(kernel.func()); break;
      case Source::FuncSize: value = static_cast<double>(kernel.mix().total()); break;
      case Source::IndexType: value = categorical(iset.type_name()); break;
      case Source::LoopId: value = categorical(kernel.loop_id()); break;
      case Source::NumIndices: value = static_cast<double>(iset.getLength()); break;
      case Source::NumSegments: value = static_cast<double>(iset.getNumSegments()); break;
      case Source::Stride: value = static_cast<double>(iset.stride()); break;
      case Source::Mnemonic:
        value = static_cast<double>(kernel.mix().count(feature.mnemonic));
        break;
      case Source::App: {
        const auto attr = board.get(feature.key);
        if (attr) value = attr->is_string() ? categorical(attr->as_string()) : attr->as_number();
        break;
      }
    }
    scratch[f] = value;
  }
}

int CompiledModel::predict(const KernelHandle& kernel, const raja::IndexSet& iset,
                           std::vector<double>& scratch, bool use_flat) const {
  resolve_features(kernel, iset, scratch);
  return predict_encoded(scratch.data(), use_flat);
}

}  // namespace apollo
