// Figure 2: total time spent in the eight most variable CleverLeaf kernels
// under oracle (best-per-launch) dynamic policy selection, compared to
// statically choosing OpenMP everywhere.

#include <cstdio>

#include "bench/harness.hpp"

using namespace apollo;

int main() {
  bench::print_heading("CleverLeaf: dynamic-best vs static-OpenMP, top-8 kernels",
                       "Figure 2 (potential of dynamic policy selection)");

  Runtime::instance().reset();
  auto app = apps::make_cleverleaf();
  const auto records = bench::record_training(*app, 5, /*with_chunks=*/false);
  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Policy);

  const auto& labels = data.dataset.label_names();
  const int omp_label = static_cast<int>(
      std::find(labels.begin(), labels.end(), "omp") - labels.begin());

  const auto top = bench::top_kernels_by_time(data, 8);
  bench::print_row({"kernel", "static OpenMP", "dynamic best", "ratio"}, {32, 16, 16, 8});

  double total_static = 0.0, total_dynamic = 0.0;
  for (const auto& kernel : top) {
    double static_time = 0.0, dynamic_time = 0.0;
    for (std::size_t r = 0; r < data.runtimes.size(); ++r) {
      if (data.row_loop_ids[r] != kernel) continue;
      const double weight = static_cast<double>(data.row_counts[r]);
      static_time += data.runtimes[r].at(omp_label) * weight;
      double best = data.runtimes[r].begin()->second;
      for (const auto& [label, seconds] : data.runtimes[r]) best = std::min(best, seconds);
      dynamic_time += best * weight;
    }
    total_static += static_time;
    total_dynamic += dynamic_time;
    bench::print_row({kernel, bench::fmt_seconds(static_time), bench::fmt_seconds(dynamic_time),
                      bench::fmt(static_time / dynamic_time, 2) + "x"},
                     {32, 16, 16, 8});
  }
  std::printf("\nTotal (top-8):  static OpenMP %s  vs  dynamic best %s  =>  %.2fx potential\n",
              bench::fmt_seconds(total_static).c_str(), bench::fmt_seconds(total_dynamic).c_str(),
              total_static / total_dynamic);
  std::printf("Paper shape: large gap between static OpenMP and per-launch best selection.\n");
  return 0;
}
