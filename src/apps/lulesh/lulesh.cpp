#include "apps/lulesh/lulesh.hpp"

#include <algorithm>
#include <cmath>

#include "core/runtime.hpp"
#include "perf/blackboard.hpp"
#include "raja/reducers.hpp"
#include "telemetry/telemetry.hpp"

namespace apollo::apps::lulesh {

namespace {

constexpr double kGamma = 1.4;
constexpr double kPmin = 0.0;
constexpr double kEmin = 1e-12;
constexpr double kVmin = 0.05;
constexpr double kHgCoef = 0.05;
constexpr double kQlc = 0.75;   ///< linear Q coefficient
constexpr double kQqc = 2.0;    ///< quadratic Q coefficient
constexpr double kCourant = 0.4;
constexpr double kDtGrow = 1.1;

using instr::MixBuilder;
using raja::PolicyType;

// Kernel handles: one per call site, constructed (and their instruction
// signatures registered) on first use. Mixes approximate each body's
// operation profile; bytes/iteration approximate its streamed footprint.
const KernelHandle& initStressKernel() {
  static const KernelHandle k{"lulesh:InitStressTermsForElems", "InitStressTermsForElems",
                              MixBuilder{}.fp(2).load(2).store(3).control(2).build(), 40};
  return k;
}
const KernelHandle& integrateStressKernel() {
  static const KernelHandle k{"lulesh:IntegrateStressForElems", "IntegrateStressForElems",
                              MixBuilder{}.fp(140).load(27).store(24).control(14).logic(6).build(),
                              424};
  return k;
}
const KernelHandle& sumElemForcesKernel() {
  static const KernelHandle k{"lulesh:SumElemStressesToNodeForces", "SumElemStressesToNodeForces",
                              MixBuilder{}.fp(24).load(24).store(3).control(10).logic(6).build(),
                              264};
  return k;
}
const KernelHandle& hourglassKernel() {
  static const KernelHandle k{"lulesh:CalcFBHourglassForceForElems", "CalcFBHourglassForceForElems",
                              MixBuilder{}.fp(190).div(1).load(27).store(24).control(10).build(),
                              504};
  return k;
}
const KernelHandle& accelKernel() {
  static const KernelHandle k{"lulesh:CalcAccelerationForNodes", "CalcAccelerationForNodes",
                              MixBuilder{}.div(3).load(4).store(3).control(2).build(), 56};
  return k;
}
const KernelHandle& accelBCKernel() {
  static const KernelHandle k{"lulesh:ApplyAccelerationBoundaryConditionsForNodes",
                              "ApplyAccelerationBoundaryConditionsForNodes",
                              MixBuilder{}.store(1).control(2).build(), 8,
                              PolicyType::seq_segit_omp_parallel_for_exec};
  return k;
}
const KernelHandle& velocityKernel() {
  static const KernelHandle k{"lulesh:CalcVelocityForNodes", "CalcVelocityForNodes",
                              MixBuilder{}.fp(6).load(6).store(3).control(2).build(), 96};
  return k;
}
const KernelHandle& positionKernel() {
  static const KernelHandle k{"lulesh:CalcPositionForNodes", "CalcPositionForNodes",
                              MixBuilder{}.fp(6).load(6).store(3).control(2).build(), 96};
  return k;
}
const KernelHandle& kinematicsKernel() {
  static const KernelHandle k{"lulesh:CalcKinematicsForElems", "CalcKinematicsForElems",
                              MixBuilder{}.fp(110).div(3).load(24).store(4).control(12).build(), 320};
  return k;
}
const KernelHandle& qGradientsKernel() {
  static const KernelHandle k{"lulesh:CalcMonotonicQGradientsForElems",
                              "CalcMonotonicQGradientsForElems",
                              MixBuilder{}.fp(28).div(3).load(24).store(1).control(8).build(), 224};
  return k;
}
const KernelHandle& monotonicQKernel() {
  static const KernelHandle k{"lulesh:CalcMonotonicQForElems", "CalcMonotonicQForElems",
                              MixBuilder{}.fp(10).div(1).sqrt(0).load(6).store(1).compare(2)
                                  .control(6).build(), 72};
  return k;
}
const KernelHandle& applyMaterialKernel() {
  static const KernelHandle k{"lulesh:ApplyMaterialPropertiesForElems",
                              "ApplyMaterialPropertiesForElems",
                              MixBuilder{}.minmax(2).load(5).store(4).control(4).build(), 80};
  return k;
}
const KernelHandle& compressionKernel() {
  static const KernelHandle k{"lulesh:CalcCompressionForElems", "CalcCompressionForElems",
                              MixBuilder{}.fp(2).div(1).load(2).store(1).control(2).build(), 32};
  return k;
}
const KernelHandle& energyPredictKernel() {
  static const KernelHandle k{"lulesh:CalcEnergyForElems", "CalcEnergyForElems",
                              MixBuilder{}.fp(8).minmax(1).load(5).store(1).control(4).build(), 80};
  return k;
}
const KernelHandle& pressureKernel() {
  static const KernelHandle k{"lulesh:CalcPressureForElems", "CalcPressureForElems",
                              MixBuilder{}.fp(3).div(1).minmax(1).load(3).store(1).control(2).build(), 48};
  return k;
}
const KernelHandle& energyCorrectKernel() {
  static const KernelHandle k{"lulesh:CalcEnergyCorrectForElems", "CalcEnergyCorrectForElems",
                              MixBuilder{}.fp(10).minmax(1).load(6).store(1).control(4).build(), 88};
  return k;
}
const KernelHandle& soundSpeedKernel() {
  static const KernelHandle k{"lulesh:CalcSoundSpeedForElems", "CalcSoundSpeedForElems",
                              MixBuilder{}.fp(3).sqrt(1).minmax(1).load(3).store(1).control(2).build(), 40};
  return k;
}
const KernelHandle& copyEosKernel() {
  static const KernelHandle k{"lulesh:CopyEOSResultsForElems", "CopyEOSResultsForElems",
                              MixBuilder{}.load(4).store(4).control(2).build(), 64};
  return k;
}
const KernelHandle& regionSumKernel() {
  static const KernelHandle k{"lulesh:CalcRegionSums", "CalcRegionSums",
                              MixBuilder{}.fp(3).load(2).store(1).control(2).build(), 24,
                              PolicyType::seq_segit_omp_parallel_for_exec};
  return k;
}
const KernelHandle& updateVolumesKernel() {
  static const KernelHandle k{"lulesh:UpdateVolumesForElems", "UpdateVolumesForElems",
                              MixBuilder{}.minmax(1).load(1).store(1).control(2).build(), 16};
  return k;
}
const KernelHandle& courantKernel() {
  static const KernelHandle k{"lulesh:CalcCourantConstraintForElems",
                              "CalcCourantConstraintForElems",
                              MixBuilder{}.fp(6).div(1).sqrt(1).load(4).store(1).compare(2)
                                  .control(4).build(), 56};
  return k;
}
const KernelHandle& hydroConstraintKernel() {
  static const KernelHandle k{"lulesh:CalcHydroConstraintForElems", "CalcHydroConstraintForElems",
                              MixBuilder{}.div(1).load(2).store(1).compare(1).control(2).build(), 24};
  return k;
}

}  // namespace

Simulation::Simulation(int edge_elems, double initial_energy) {
  dom_.build(edge_elems, initial_energy);
}

void Simulation::lagrangeNodal() {
  Domain& d = dom_;
  const int s = d.s;
  const int np = s + 1;
  const raja::IndexSet elems = raja::IndexSet::range(0, d.numElem);
  const raja::IndexSet nodes = raja::IndexSet::range(0, d.numNode);

  // Stress terms from the previous step's p and q.
  {
    const double* p = d.p.data();
    const double* q = d.q.data();
    double* sxx = d.sigxx.data();
    double* syy = d.sigyy.data();
    double* szz = d.sigzz.data();
    forall(initStressKernel(), elems, [=](raja::Index el) {
      const double sig = -p[el] - q[el];
      sxx[el] = syy[el] = szz[el] = sig;
    });
  }

  // Integrate stress to nodal forces, LULESH-style: phase 1 computes each
  // element's 8 corner forces from its stress and corner area normals
  // (CalcElemNodeNormals); phase 2 gathers every adjacent element's corner
  // contribution at each node (SumElemStressesToNodeForces). Both phases are
  // write-disjoint, so any execution policy is safe.
  {
    const double* sxx = d.sigxx.data();
    const double* syy = d.sigyy.data();
    const double* szz = d.sigzz.data();
    const double* x = d.x.data();
    const double* y = d.y.data();
    const double* z = d.z.data();
    double* fx_elem = d.fx_elem.data();
    double* fy_elem = d.fy_elem.data();
    double* fz_elem = d.fz_elem.data();
    const Domain* dp = &d;
    forall(integrateStressKernel(), elems, [=](raja::Index el) {
      const int ei = static_cast<int>(el) % s;
      const int ej = (static_cast<int>(el) / s) % s;
      const int ek = static_cast<int>(el) / (s * s);
      double hx[8], hy[8], hz[8];
      static constexpr int off[8][3] = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                                        {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
      for (int c = 0; c < 8; ++c) {
        const int n = dp->nodeIndex(ei + off[c][0], ej + off[c][1], ek + off[c][2]);
        hx[c] = x[n];
        hy[c] = y[n];
        hz[c] = z[n];
      }
      double nx[8] = {0}, ny[8] = {0}, nz[8] = {0};
      hex_corner_normals(hx, hy, hz, nx, ny, nz);
      // Corner force = -sig * outward corner normal (sig = -(p+q), so high
      // pressure pushes the element's corners outward).
      for (int c = 0; c < 8; ++c) {
        const auto slot = static_cast<std::size_t>(el) * 8 + static_cast<std::size_t>(c);
        fx_elem[slot] = -sxx[el] * nx[c];
        fy_elem[slot] = -syy[el] * ny[c];
        fz_elem[slot] = -szz[el] * nz[c];
      }
    });
  }

  // Flanagan-Belytschko hourglass control (LULESH's
  // CalcFBHourglassForceForElems, without the distorted-element
  // orthogonalization): project each element's corner velocities onto the
  // four hourglass base modes and push back against them. Zero for uniform
  // motion; the forces accumulate into the per-element corner slots that the
  // node gather below already sums.
  {
    const double* xd = d.xd.data();
    const double* yd = d.yd.data();
    const double* zd = d.zd.data();
    const double* mass = d.elemMass.data();
    double* fx_elem = d.fx_elem.data();
    double* fy_elem = d.fy_elem.data();
    double* fz_elem = d.fz_elem.data();
    const double coef = kHgCoef / (8.0 * d.deltatime);
    const Domain* dp = &d;
    forall(hourglassKernel(), elems, [=](raja::Index el) {
      // The four hourglass base vectors over the 8 corners (LULESH gamma).
      static constexpr double gamma[4][8] = {
          {1, 1, -1, -1, -1, -1, 1, 1},
          {1, -1, -1, 1, -1, 1, 1, -1},
          {1, -1, 1, -1, 1, -1, 1, -1},
          {-1, 1, -1, 1, 1, -1, 1, -1},
      };
      static constexpr int off[8][3] = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                                        {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
      const int ei = static_cast<int>(el) % s;
      const int ej = (static_cast<int>(el) / s) % s;
      const int ek = static_cast<int>(el) / (s * s);
      double vx[8], vy[8], vz[8];
      for (int c = 0; c < 8; ++c) {
        const int n = dp->nodeIndex(ei + off[c][0], ej + off[c][1], ek + off[c][2]);
        vx[c] = xd[n];
        vy[c] = yd[n];
        vz[c] = zd[n];
      }
      const double scale = coef * mass[el];
      for (int m = 0; m < 4; ++m) {
        double sx = 0.0, sy = 0.0, sz = 0.0;
        for (int c = 0; c < 8; ++c) {
          sx += vx[c] * gamma[m][c];
          sy += vy[c] * gamma[m][c];
          sz += vz[c] * gamma[m][c];
        }
        for (int c = 0; c < 8; ++c) {
          const auto slot = static_cast<std::size_t>(el) * 8 + static_cast<std::size_t>(c);
          fx_elem[slot] -= scale * sx * gamma[m][c] / 8.0;
          fy_elem[slot] -= scale * sy * gamma[m][c] / 8.0;
          fz_elem[slot] -= scale * sz * gamma[m][c] / 8.0;
        }
      }
    });
  }

  {
    const double* fx_elem = d.fx_elem.data();
    const double* fy_elem = d.fy_elem.data();
    const double* fz_elem = d.fz_elem.data();
    double* fx = d.fx.data();
    double* fy = d.fy.data();
    double* fz = d.fz.data();
    const Domain* dp = &d;
    forall(sumElemForcesKernel(), nodes, [=](raja::Index n) {
      const int i = static_cast<int>(n) % np;
      const int j = (static_cast<int>(n) / np) % np;
      const int k = static_cast<int>(n) / (np * np);
      // Corner index of this node inside the element at offset (di,dj,dk):
      // inverse of the off[] table above, indexed by di + 2*dj + 4*dk.
      static constexpr int corner_of[8] = {0, 1, 3, 2, 4, 5, 7, 6};
      double sum_x = 0.0, sum_y = 0.0, sum_z = 0.0;
      for (int dk = 0; dk <= 1; ++dk) {
        for (int dj = 0; dj <= 1; ++dj) {
          for (int di = 0; di <= 1; ++di) {
            const int ei = i - di, ej = j - dj, ek = k - dk;
            if (ei < 0 || ej < 0 || ek < 0 || ei >= s || ej >= s || ek >= s) continue;
            const auto el = static_cast<std::size_t>(dp->elemIndex(ei, ej, ek));
            const int corner = corner_of[di + 2 * dj + 4 * dk];
            const std::size_t slot = el * 8 + static_cast<std::size_t>(corner);
            sum_x += fx_elem[slot];
            sum_y += fy_elem[slot];
            sum_z += fz_elem[slot];
          }
        }
      }
      fx[n] = sum_x;
      fy[n] = sum_y;
      fz[n] = sum_z;
    });
  }

  // acceleration = force / mass
  {
    const double* fx = d.fx.data();
    const double* fy = d.fy.data();
    const double* fz = d.fz.data();
    const double* mass = d.nodalMass.data();
    double* xdd = d.xdd.data();
    double* ydd = d.ydd.data();
    double* zdd = d.zdd.data();
    forall(accelKernel(), nodes, [=](raja::Index n) {
      xdd[n] = fx[n] / mass[n];
      ydd[n] = fy[n] / mass[n];
      zdd[n] = fz[n] / mass[n];
    });
  }

  // Symmetry boundary conditions: zero normal acceleration on each plane.
  {
    double* xdd = d.xdd.data();
    double* ydd = d.ydd.data();
    double* zdd = d.zdd.data();
    forall(accelBCKernel(), d.symmX, [=](raja::Index n) { xdd[n] = 0.0; });
    forall(accelBCKernel(), d.symmY, [=](raja::Index n) { ydd[n] = 0.0; });
    forall(accelBCKernel(), d.symmZ, [=](raja::Index n) { zdd[n] = 0.0; });
  }

  const double dt = d.deltatime;
  {
    const double* xdd = d.xdd.data();
    const double* ydd = d.ydd.data();
    const double* zdd = d.zdd.data();
    double* xd = d.xd.data();
    double* yd = d.yd.data();
    double* zd = d.zd.data();
    forall(velocityKernel(), nodes, [=](raja::Index n) {
      xd[n] += xdd[n] * dt;
      yd[n] += ydd[n] * dt;
      zd[n] += zdd[n] * dt;
    });
  }
  {
    const double* xd = d.xd.data();
    const double* yd = d.yd.data();
    const double* zd = d.zd.data();
    double* x = d.x.data();
    double* y = d.y.data();
    double* z = d.z.data();
    forall(positionKernel(), nodes, [=](raja::Index n) {
      x[n] += xd[n] * dt;
      y[n] += yd[n] * dt;
      z[n] += zd[n] * dt;
    });
  }
}

void Simulation::lagrangeElements() {
  Domain& d = dom_;
  const int s = d.s;
  const int np = s + 1;
  const raja::IndexSet elems = raja::IndexSet::range(0, d.numElem);

  // Kinematics: new relative volume from the moved hex corners.
  {
    const double* x = d.x.data();
    const double* y = d.y.data();
    const double* z = d.z.data();
    const double* volo = d.volo.data();
    const double* v = d.v.data();
    double* vnew = d.vnew.data();
    double* delv = d.delv.data();
    double* alg = d.arealg.data();
    const Domain* dp = &d;
    forall(kinematicsKernel(), elems, [=](raja::Index el) {
      const int ei = static_cast<int>(el) % s;
      const int ej = (static_cast<int>(el) / s) % s;
      const int ek = static_cast<int>(el) / (s * s);
      double hx[8], hy[8], hz[8];
      static constexpr int off[8][3] = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
                                        {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
      for (int c = 0; c < 8; ++c) {
        const int n = dp->nodeIndex(ei + off[c][0], ej + off[c][1], ek + off[c][2]);
        hx[c] = x[n];
        hy[c] = y[n];
        hz[c] = z[n];
      }
      const double volume = hex_volume(hx, hy, hz);
      const double rel = std::max(volume / volo[el], kVmin);
      vnew[el] = rel;
      delv[el] = rel - v[el];
      alg[el] = std::cbrt(volume);
    });
  }

  // Velocity gradients -> volume change rate (vdov).
  {
    const double* xd = d.xd.data();
    const double* yd = d.yd.data();
    const double* zd = d.zd.data();
    const double* alg = d.arealg.data();
    double* vdov = d.vdov.data();
    const Domain* dp = &d;
    forall(qGradientsKernel(), elems, [=](raja::Index el) {
      const int ei = static_cast<int>(el) % s;
      const int ej = (static_cast<int>(el) / s) % s;
      const int ek = static_cast<int>(el) / (s * s);
      // Face-averaged velocities on opposite faces.
      auto favg = [&](const double* field, int axis, int hi) {
        double sum = 0.0;
        for (int b = 0; b <= 1; ++b) {
          for (int a = 0; a <= 1; ++a) {
            int ni = ei, nj = ej, nk = ek;
            if (axis == 0) { ni += hi; nj += a; nk += b; }
            if (axis == 1) { nj += hi; ni += a; nk += b; }
            if (axis == 2) { nk += hi; ni += a; nj += b; }
            sum += field[dp->nodeIndex(ni, nj, nk)];
          }
        }
        return 0.25 * sum;
      };
      const double h = alg[el];
      const double dudx = (favg(xd, 0, 1) - favg(xd, 0, 0)) / h;
      const double dvdy = (favg(yd, 1, 1) - favg(yd, 1, 0)) / h;
      const double dwdz = (favg(zd, 2, 1) - favg(zd, 2, 0)) / h;
      vdov[el] = dudx + dvdy + dwdz;
    });
    (void)np;
  }

  // Monotonic-Q style artificial viscosity (compression only).
  {
    const double* vdov = d.vdov.data();
    const double* alg = d.arealg.data();
    const double* vnew = d.vnew.data();
    const double* ss = d.ss.data();
    double* q = d.q.data();
    forall(monotonicQKernel(), elems, [=](raja::Index el) {
      if (vdov[el] < 0.0) {
        const double rho = 1.0 / std::max(vnew[el], kVmin);
        const double dl = alg[el];
        const double dvel = -vdov[el] * dl;
        q[el] = rho * (kQqc * dvel * dvel + kQlc * ss[el] * dvel);
      } else {
        q[el] = 0.0;
      }
    });
  }
}

void Simulation::applyMaterialModel() {
  Domain& d = dom_;

  for (int r = 0; r < d.numReg; ++r) {
    const raja::IndexSet& region = d.regions[static_cast<std::size_t>(r)];

    {
      double* e_old = d.e_old.data();
      double* p_old = d.p_old.data();
      double* q_old = d.q_old.data();
      double* work = d.work.data();
      const double* e = d.e.data();
      const double* p = d.p.data();
      const double* q = d.q.data();
      forall(applyMaterialKernel(), region, [=](raja::Index el) {
        e_old[el] = std::max(e[el], kEmin);
        p_old[el] = std::max(p[el], kPmin);
        q_old[el] = q[el];
        work[el] = 0.0;
      });
    }
    {
      const double* vnew = d.vnew.data();
      double* compression = d.compression.data();
      forall(compressionKernel(), region, [=](raja::Index el) {
        compression[el] = 1.0 / std::max(vnew[el], kVmin) - 1.0;
      });
    }
    // Predictor energy update (PdV work from the half-step).
    {
      const double* e_old = d.e_old.data();
      const double* p_old = d.p_old.data();
      const double* q_old = d.q_old.data();
      const double* delv = d.delv.data();
      const double* work = d.work.data();
      double* e_new = d.e_new.data();
      forall(energyPredictKernel(), region, [=](raja::Index el) {
        e_new[el] =
            std::max(e_old[el] - 0.5 * delv[el] * (p_old[el] + q_old[el]) + 0.5 * work[el], kEmin);
      });
    }
    // Pressure from the predicted energy (ideal gas).
    {
      const double* e_new = d.e_new.data();
      const double* vnew = d.vnew.data();
      double* p_new = d.p_new.data();
      forall(pressureKernel(), region, [=](raja::Index el) {
        p_new[el] = std::max((kGamma - 1.0) * e_new[el] / std::max(vnew[el], kVmin), kPmin);
      });
    }
    // Corrector: finish the PdV update with the new pressure.
    {
      const double* p_old = d.p_old.data();
      const double* q_old = d.q_old.data();
      const double* delv = d.delv.data();
      const double* p_new = d.p_new.data();
      double* e_new = d.e_new.data();
      double* q_new = d.q_new.data();
      const double* q = d.q.data();
      forall(energyCorrectKernel(), region, [=](raja::Index el) {
        e_new[el] = std::max(
            e_new[el] - 0.25 * delv[el] * (p_new[el] - p_old[el] + q[el] - q_old[el]), kEmin);
        q_new[el] = delv[el] > 0.0 ? 0.0 : q[el];
      });
    }
    // Final pressure at the corrected energy.
    {
      const double* e_new = d.e_new.data();
      const double* vnew = d.vnew.data();
      double* p_new = d.p_new.data();
      forall(pressureKernel(), region, [=](raja::Index el) {
        p_new[el] = std::max((kGamma - 1.0) * e_new[el] / std::max(vnew[el], kVmin), kPmin);
      });
    }
    {
      const double* p_new = d.p_new.data();
      const double* vnew = d.vnew.data();
      double* ss = d.ss.data();
      forall(soundSpeedKernel(), region, [=](raja::Index el) {
        ss[el] = std::sqrt(std::max(kGamma * p_new[el] * vnew[el], 1e-20));
      });
    }
    {
      const double* e_new = d.e_new.data();
      const double* p_new = d.p_new.data();
      const double* q_new = d.q_new.data();
      double* e = d.e.data();
      double* p = d.p.data();
      double* q = d.q.data();
      forall(copyEosKernel(), region, [=](raja::Index el) {
        e[el] = e_new[el];
        p[el] = p_new[el];
        q[el] = q_new[el];
      });
    }
  }

  // The 11-iteration bookkeeping loop over regions themselves (the paper's
  // "kernels with iteration counts dependent solely on the number of
  // material regions").
  {
    double* regionMass = d.regionMass.data();
    const double* regionSize = d.regionSize.data();
    forall(regionSumKernel(), raja::IndexSet::range(0, d.numReg), [=](raja::Index r) {
      regionMass[r] = 0.9 * regionMass[r] + 0.1 * regionSize[r];
    });
  }

  // Commit volumes.
  {
    const double* vnew = d.vnew.data();
    double* v = d.v.data();
    forall(updateVolumesKernel(), raja::IndexSet::range(0, d.numElem),
           [=](raja::Index el) { v[el] = std::max(vnew[el], kVmin); });
  }
}

void Simulation::calcTimeConstraints() {
  Domain& d = dom_;
  const raja::IndexSet elems = raja::IndexSet::range(0, d.numElem);

  // RAJA-style reducers combine across threads under any execution policy.
  const raja::ReduceMin<double> courant_min(1e20);
  const raja::ReduceMin<double> hydro_min(1e20);
  {
    const double* ss = d.ss.data();
    const double* alg = d.arealg.data();
    const double* vdov = d.vdov.data();
    double* dtc = d.dtcourant_el.data();
    forall(courantKernel(), elems, [=](raja::Index el) {
      double dtf = ss[el] * ss[el];
      if (vdov[el] < 0.0) {
        const double term = kQqc * alg[el] * vdov[el];
        dtf += 4.0 * term * term;
      }
      dtc[el] = alg[el] / std::sqrt(std::max(dtf, 1e-30));
      courant_min.min(dtc[el]);
    });
  }
  {
    const double* vdov = d.vdov.data();
    double* dth = d.dthydro_el.data();
    forall(hydroConstraintKernel(), elems, [=](raja::Index el) {
      dth[el] = vdov[el] != 0.0 ? 0.1 / std::fabs(vdov[el]) : 1e20;
      hydro_min.min(dth[el]);
    });
  }

  d.dtcourant = courant_min.get();
  d.dthydro = hydro_min.get();

  const double target = kCourant * std::min(d.dtcourant, d.dthydro);
  d.deltatime = std::min(target, d.deltatime * kDtGrow);
}

void Simulation::step() {
  lagrangeNodal();
  lagrangeElements();
  applyMaterialModel();
  calcTimeConstraints();
  dom_.time += dom_.deltatime;
  dom_.cycle += 1;
}

void Simulation::run(int steps) {
  for (int i = 0; i < steps; ++i) {
    perf::ScopedAnnotation timestep("timestep", dom_.cycle);
    const telemetry::ScopedSpan span(telemetry::EventKind::Phase, "lulesh.step",
                                     static_cast<std::uint64_t>(dom_.cycle));
    step();
  }
}

namespace {

class MiniLuleshApp final : public Application {
public:
  [[nodiscard]] std::string name() const override { return "LULESH"; }
  [[nodiscard]] std::vector<std::string> problems() const override { return {"sedov"}; }
  [[nodiscard]] std::vector<int> training_sizes() const override { return {8, 14, 22, 34, 52}; }

  void run(const RunConfig& config) override {
    perf::ScopedAnnotation problem("problem_name", "lulesh-" + config.problem);
    perf::ScopedAnnotation size("problem_size", config.size);
    Simulation sim(config.size);
    sim.run(config.steps);
  }
};

}  // namespace

}  // namespace apollo::apps::lulesh

namespace apollo::apps {

std::unique_ptr<Application> make_lulesh() {
  return std::make_unique<lulesh::MiniLuleshApp>();
}

}  // namespace apollo::apps
