#pragma once

// Scheduling-priority control for background lanes.
//
// The online Retrainer shares the machine with the application it tunes; on
// hosts with few cores a model fit at normal priority steals wall time
// directly from the kernels being measured. Dropping the retrain lane to the
// weakest normal priority lets the OS scheduler give the application nearly
// the whole core while training still makes progress in the gaps.

namespace apollo::par {

/// Lower the calling thread's scheduling priority to the weakest normal
/// level (nice 19 on Linux; no-op elsewhere). Returns true on success.
/// Affects only the calling thread, for its lifetime.
bool lower_current_thread_priority() noexcept;

}  // namespace apollo::par
