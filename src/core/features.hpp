#pragma once

// Canonical feature names (Table I) and helpers shared between the recorder
// (which writes raw attribute records) and the tuner (which resolves the same
// names to numeric values at prediction time).

#include <string>
#include <vector>

#include "instr/mix.hpp"
#include "perf/record.hpp"
#include "raja/index_set.hpp"

namespace apollo::features {

// Kernel features (derived from forall arguments / the kernel handle).
inline constexpr const char* kFunc = "func";
inline constexpr const char* kFuncSize = "func_size";
inline constexpr const char* kIndexType = "index_type";
inline constexpr const char* kLoopId = "loop_id";
inline constexpr const char* kNumIndices = "num_indices";
inline constexpr const char* kNumSegments = "num_segments";
inline constexpr const char* kStride = "stride";

// Application features published on the blackboard by the app driver.
inline constexpr const char* kTimestep = "timestep";
inline constexpr const char* kProblemSize = "problem_size";
inline constexpr const char* kProblemName = "problem_name";
inline constexpr const char* kPatchId = "patch_id";

// Record keys that are *not* features: the parameter values used for the run
// and the measurement.
inline constexpr const char* kParamPolicy = "param:policy";
inline constexpr const char* kParamChunk = "param:chunk_size";
inline constexpr const char* kParamThreads = "param:threads";
inline constexpr const char* kMeasureRuntime = "measure:runtime";
/// Kernel bytes-per-iteration, carried as sample metadata (not a model
/// feature) so an offline consumer — the Retrainer's search augmentation,
/// apollo_train --search — can rebuild the launch's machine-model CostQuery
/// without the live KernelHandle.
inline constexpr const char* kMeasureBytesPerIter = "measure:bytes_per_iter";

/// True for record keys that describe the sample rather than the launch.
[[nodiscard]] inline bool is_meta_key(const std::string& key) {
  return key.rfind("param:", 0) == 0 || key.rfind("measure:", 0) == 0;
}

/// All kernel + instruction feature names, in canonical order.
[[nodiscard]] std::vector<std::string> kernel_feature_names();

/// The application feature names used by the bundled proxy apps.
[[nodiscard]] std::vector<std::string> app_feature_names();

/// Populate `record` with the kernel and instruction features for a launch.
void fill_kernel_features(perf::SampleRecord& record, const std::string& loop_id,
                          const std::string& func, const instr::InstructionMix& mix,
                          const raja::IndexSet& iset);

/// Same, from already-extracted index-set scalars. Used when the launch's
/// record is materialized after the fact (online::Sample) and the IndexSet is
/// no longer available.
void fill_kernel_features(perf::SampleRecord& record, const std::string& loop_id,
                          const std::string& func, const instr::InstructionMix& mix,
                          std::int64_t num_indices, std::int64_t num_segments,
                          std::int64_t stride, const std::string& index_type);

}  // namespace apollo::features
