#include "instr/mix.hpp"

#include <numeric>

namespace apollo::instr {

const char* mnemonic_name(Mnemonic m) noexcept {
  switch (m) {
    case Mnemonic::add: return "add";
    case Mnemonic::and_: return "and";
    case Mnemonic::call: return "call";
    case Mnemonic::cmp: return "cmp";
    case Mnemonic::comisd: return "comisd";
    case Mnemonic::divsd: return "divsd";
    case Mnemonic::inc: return "inc";
    case Mnemonic::jb: return "jb";
    case Mnemonic::lea: return "lea";
    case Mnemonic::loop: return "loop";
    case Mnemonic::maxsd: return "maxsd";
    case Mnemonic::minsd: return "minsd";
    case Mnemonic::mov: return "mov";
    case Mnemonic::movsd: return "movsd";
    case Mnemonic::mulpd: return "mulpd";
    case Mnemonic::nop: return "nop";
    case Mnemonic::pop: return "pop";
    case Mnemonic::push: return "push";
    case Mnemonic::pxor: return "pxor";
    case Mnemonic::ret: return "ret";
    case Mnemonic::sar: return "sar";
    case Mnemonic::shl: return "shl";
    case Mnemonic::sqrtsd: return "sqrtsd";
    case Mnemonic::sub: return "sub";
    case Mnemonic::test: return "test";
    case Mnemonic::ucomisd: return "ucomisd";
    case Mnemonic::unpckhpd: return "unpckhpd";
    case Mnemonic::unpcklpd: return "unpcklpd";
    case Mnemonic::xor_: return "xor";
    case Mnemonic::xorps: return "xorps";
    case Mnemonic::count_: break;
  }
  return "?";
}

std::int64_t InstructionMix::total() const noexcept {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < kMnemonicCount; ++i) sum += counts_[i];
  return sum;
}

std::int64_t InstructionMix::flops() const noexcept {
  return count(Mnemonic::add) + count(Mnemonic::sub) + count(Mnemonic::mulpd) +
         count(Mnemonic::maxsd) + count(Mnemonic::minsd);
}

std::int64_t InstructionMix::memory_ops() const noexcept {
  return count(Mnemonic::mov) + count(Mnemonic::movsd) + count(Mnemonic::push) +
         count(Mnemonic::pop) + count(Mnemonic::lea);
}

std::int64_t InstructionMix::expensive_ops() const noexcept {
  return count(Mnemonic::divsd) + count(Mnemonic::sqrtsd);
}

MixBuilder& MixBuilder::fp(std::int64_t n) {
  mix_.add(Mnemonic::add, (n + 1) / 2);
  mix_.add(Mnemonic::mulpd, n / 2);
  return *this;
}

MixBuilder& MixBuilder::div(std::int64_t n) {
  mix_.add(Mnemonic::divsd, n);
  return *this;
}

MixBuilder& MixBuilder::sqrt(std::int64_t n) {
  mix_.add(Mnemonic::sqrtsd, n);
  return *this;
}

MixBuilder& MixBuilder::minmax(std::int64_t n) {
  mix_.add(Mnemonic::maxsd, (n + 1) / 2);
  mix_.add(Mnemonic::minsd, n / 2);
  return *this;
}

MixBuilder& MixBuilder::load(std::int64_t n) {
  mix_.add(Mnemonic::movsd, n);
  return *this;
}

MixBuilder& MixBuilder::store(std::int64_t n) {
  mix_.add(Mnemonic::mov, n);
  return *this;
}

MixBuilder& MixBuilder::compare(std::int64_t n) {
  mix_.add(Mnemonic::comisd, (n + 1) / 2);
  mix_.add(Mnemonic::ucomisd, n / 2);
  return *this;
}

MixBuilder& MixBuilder::control(std::int64_t n) {
  mix_.add(Mnemonic::cmp, (n + 2) / 3);
  mix_.add(Mnemonic::jb, (n + 1) / 3);
  mix_.add(Mnemonic::test, n / 3);
  return *this;
}

MixBuilder& MixBuilder::logic(std::int64_t n) {
  mix_.add(Mnemonic::and_, (n + 2) / 3);
  mix_.add(Mnemonic::xor_, (n + 1) / 3);
  mix_.add(Mnemonic::sar, n / 3);
  return *this;
}

}  // namespace apollo::instr
