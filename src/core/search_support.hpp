#pragma once

// Shared glue between the generic two-stage search engine (ml/search) and
// Apollo's concrete (policy x chunk x team) tuning space. Used by every
// search entry point: the Record-mode sweep and the Retrainer augmentation
// inside the runtime, and apollo_train --search offline.

#include <cstdint>
#include <string>
#include <vector>

#include "core/search_options.hpp"
#include "ml/search/space.hpp"
#include "ml/search/two_stage.hpp"
#include "perf/record.hpp"
#include "raja/policy.hpp"
#include "sim/machine.hpp"

namespace apollo {

/// A decoded point of the (policy x chunk x team) training space.
struct SearchVariant {
  raja::PolicyType policy = raja::PolicyType::seq_segit_seq_exec;
  std::int64_t chunk = 0;
  unsigned team = 0;
};

/// The space the exhaustive sweep covers, as typed search lanes. Index 0 of
/// the chunk/team lanes is the "default" (0) sentinel, so the anchor
/// variants the trainer's labelling rules require live inside the space.
[[nodiscard]] ml::search::Space make_variant_space(const std::vector<std::int64_t>& chunk_values,
                                                   const std::vector<unsigned>& thread_values);

/// Decode a search point into a concrete variant (sequential points ignore
/// the chunk/team lanes).
[[nodiscard]] SearchVariant variant_at(const ml::search::Space& space,
                                       const ml::search::Point& point);

/// Dedupe key: every sequential point is the same configuration, so the
/// search can never spend budget re-measuring seq under a different chunk.
[[nodiscard]] std::uint64_t canonical_variant_key(const ml::search::Space& space,
                                                  const ml::search::Point& point);

/// Lower the user-facing SearchOptions into the engine's SearchConfig.
[[nodiscard]] ml::search::SearchConfig search_engine_config(const SearchOptions& options,
                                                            std::uint64_t seed,
                                                            std::size_t samples_per_config);

/// Rebuild the machine-model query for a recorded launch from its attribute
/// map (the inverse of Runtime::make_query, for consumers that no longer
/// hold the live KernelHandle — the Retrainer's background augmentation and
/// apollo_train --search).
[[nodiscard]] sim::CostQuery query_from_record(const perf::SampleRecord& record);

/// Launch-group identity for search over recorded samples: records that
/// share a kernel, an index-set shape, and a problem deck share one search.
[[nodiscard]] std::string search_group_key(const perf::SampleRecord& record);

}  // namespace apollo
