# Empty compiler generated dependencies file for micro_dispatch_overhead.
# This may be replaced when dependencies are built.
