// apollo-top: live per-kernel status for a telemetry-enabled Apollo run.
//
// Tails the Prometheus metrics file and decision-introspection JSONL that a
// run exports when APOLLO_TELEMETRY=1 and APOLLO_METRICS_FILE points at a
// path (both files are refreshed atomically on the flush cadence, so this
// tool never sees a torn file). Prints one row per kernel: launch count,
// dominant variant and its share, decision-latency percentiles, and the most
// recent sampled decision's predicted-vs-observed runtime.
//
// Usage:
//   apollo_top [--metrics FILE] [--decisions FILE] [--fleet FILE]
//              [--interval SEC] [--once]
//
// Defaults match the runtime's defaults: apollo_metrics.prom and
// apollo_decisions.jsonl in the current directory. --fleet tails a trainer
// daemon's merged fleet export (APOLLO_FLEET_METRICS_FILE) and adds a fleet
// pane: one row per client with its applied generation, lag behind the
// daemon, staleness, contribution counts, and SLO breaches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perf/quantile.hpp"
#include "telemetry/audit.hpp"  // read_complete_lines: tolerate live writers
#include "telemetry/build_info.hpp"

namespace {

struct LabelSet {
  std::map<std::string, std::string> labels;
};

struct MetricSample {
  std::string name;
  LabelSet labels;
  double value = 0.0;
};

/// Parse one `name{k="v",...} value` exposition line (labels optional).
std::optional<MetricSample> parse_line(const std::string& line) {
  if (line.empty() || line[0] == '#') return std::nullopt;
  MetricSample sample;
  std::size_t pos = line.find_first_of("{ ");
  if (pos == std::string::npos) return std::nullopt;
  sample.name = line.substr(0, pos);
  if (line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      const std::size_t eq = line.find('=', pos);
      if (eq == std::string::npos || line[eq + 1] != '"') return std::nullopt;
      const std::string key = line.substr(pos, eq - pos);
      std::string value;
      std::size_t v = eq + 2;
      while (v < line.size() && line[v] != '"') {
        if (line[v] == '\\' && v + 1 < line.size()) ++v;
        value += line[v++];
      }
      sample.labels.labels.emplace(key, std::move(value));
      pos = v + 1;
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size()) return std::nullopt;
    ++pos;  // '}'
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  sample.value = std::atof(line.c_str() + pos);
  return sample;
}

struct KernelRow {
  double launches = 0.0;
  std::map<std::string, double> variants;          ///< variant -> dispatch count
  std::vector<std::pair<double, double>> buckets;  ///< (le, cumulative) for decision latency
  double decision_count = 0.0;
  double drift_fires = 0.0;
  // Model quality (present once a tuned launch was scored).
  double accuracy = -1.0;  ///< -1 = no quality data exported yet
  double regret_seconds = 0.0;
  // Most recent sampled decision (from the JSONL).
  std::string predicted;
  double predicted_seconds = 0.0;
  double observed_seconds = 0.0;
};

struct Snapshot {
  std::map<std::string, KernelRow> kernels;
  double model_generation = 0.0;
  double hot_swaps = 0.0;
  double explores = 0.0;
  double probes = 0.0;
  double samples_pushed = 0.0;
  double samples_dropped = 0.0;
  double buffer_occupancy = 0.0;
  // Decision-path counters (apollo_inline_cache_*, apollo_flat_eval_total).
  double inline_hits = 0.0;
  double inline_misses = 0.0;
  double flat_evals = 0.0;
  // Tuning-search counters (apollo_search_*): variant-space coverage of the
  // Record sweep / Retrainer augmentation.
  double search_measured = 0.0;
  double search_skipped = 0.0;
  double search_seeded = 0.0;
  // Fork-join executor counters (apollo_pool_*).
  double pool_launches = 0.0;
  double pool_inline = 0.0;
  double pool_wakeups = 0.0;
  double pool_spin = 0.0;
  double pool_park = 0.0;
  // Apollo-as-a-service: client side (apollo_service_*) and, when the
  // metrics file belongs to a daemon process, server side (apollo_served_*).
  double service_connected = 0.0;
  double service_connects = 0.0;
  double service_batches = 0.0;
  double service_samples = 0.0;
  double service_bytes = 0.0;
  double service_pushes = 0.0;
  double service_generation = 0.0;
  double service_fallbacks = 0.0;
  double served_clients = 0.0;
  double served_batches = 0.0;
  double served_samples = 0.0;
  double served_rejected = 0.0;
  double served_trains = 0.0;
  // Hardware-counter profiling (apollo_hw_*), keyed (kernel, variant).
  struct HwRow {
    double windows = 0.0;
    double cycles = 0.0;
    double ipc = 0.0;
    double cache_miss_rate = 0.0;
    double branch_miss_rate = 0.0;
    double stall_fraction = 0.0;
    double cycles_per_element = 0.0;
  };
  std::map<std::pair<std::string, std::string>, HwRow> hw;
  std::string hw_provider;
  std::string build;
};

// One client row in the daemon's merged fleet export, keyed by the
// client="..." label the daemon stamps onto the apollo_fleet_* series.
struct FleetRow {
  double connected = 0.0;
  double generation_lag = 0.0;
  double staleness_seconds = 0.0;
  double last_push_age_seconds = -1.0;
  double batches = 0.0;
  double samples = 0.0;
  double slo_breaches = 0.0;
  double regret_stale_seconds = 0.0;
};

struct FleetSnapshot {
  bool loaded = false;
  double clients = 0.0;
  double generation = 0.0;
  double trains = 0.0;
  double telemetry_snapshots = 0.0;
  std::map<std::string, FleetRow> rows;
};

// Quantiles from cumulative `le` buckets come from the shared helper
// (perf/quantile.hpp), interpolated like the exporter's Histogram.
using apollo::perf::bucket_quantile;

bool load_metrics(const std::string& path, Snapshot& snap) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const auto sample = parse_line(line);
    if (!sample) continue;
    const auto label = [&](const char* key) -> std::string {
      auto it = sample->labels.labels.find(key);
      return it != sample->labels.labels.end() ? it->second : std::string();
    };
    if (sample->name == "apollo_dispatch_total") {
      // Total launches per kernel are the sum of per-variant dispatch counts;
      // the runtime does not keep a separate launches counter on the hot path.
      KernelRow& row = snap.kernels[label("kernel")];
      row.variants[label("variant")] = sample->value;
      row.launches = 0.0;
      for (const auto& [variant, count] : row.variants) {
        (void)variant;
        row.launches += count;
      }
    } else if (sample->name == "apollo_decision_seconds_bucket") {
      const std::string le = label("le");
      if (le != "+Inf") {
        snap.kernels[label("kernel")].buckets.emplace_back(std::atof(le.c_str()), sample->value);
      }
    } else if (sample->name == "apollo_decision_seconds_count") {
      snap.kernels[label("kernel")].decision_count = sample->value;
    } else if (sample->name == "apollo_drift_fires_total") {
      snap.kernels[label("kernel")].drift_fires = sample->value;
    } else if (sample->name == "apollo_model_accuracy") {
      snap.kernels[label("kernel")].accuracy = sample->value;
    } else if (sample->name == "apollo_regret_seconds_total") {
      snap.kernels[label("kernel")].regret_seconds = sample->value;
    } else if (sample->name == "apollo_probe_total") {
      snap.probes = sample->value;
    } else if (sample->name == "apollo_model_generation") {
      snap.model_generation = sample->value;
    } else if (sample->name == "apollo_hot_swaps_total") {
      snap.hot_swaps = sample->value;
    } else if (sample->name == "apollo_explore_total") {
      snap.explores = sample->value;
    } else if (sample->name == "apollo_samples_pushed_total") {
      snap.samples_pushed = sample->value;
    } else if (sample->name == "apollo_samples_dropped_total") {
      snap.samples_dropped = sample->value;
    } else if (sample->name == "apollo_sample_buffer_occupancy") {
      snap.buffer_occupancy = sample->value;
    } else if (sample->name == "apollo_inline_cache_hits_total") {
      snap.inline_hits = sample->value;
    } else if (sample->name == "apollo_inline_cache_misses_total") {
      snap.inline_misses = sample->value;
    } else if (sample->name == "apollo_flat_eval_total") {
      snap.flat_evals = sample->value;
    } else if (sample->name == "apollo_search_measured_total") {
      snap.search_measured = sample->value;
    } else if (sample->name == "apollo_search_skipped_total") {
      snap.search_skipped = sample->value;
    } else if (sample->name == "apollo_search_seeded_total") {
      snap.search_seeded = sample->value;
    } else if (sample->name == "apollo_pool_launches_total") {
      snap.pool_launches = sample->value;
    } else if (sample->name == "apollo_pool_inline_total") {
      snap.pool_inline = sample->value;
    } else if (sample->name == "apollo_pool_wakeups_total") {
      snap.pool_wakeups = sample->value;
    } else if (sample->name == "apollo_pool_spin_completions_total") {
      snap.pool_spin = sample->value;
    } else if (sample->name == "apollo_pool_park_completions_total") {
      snap.pool_park = sample->value;
    } else if (sample->name == "apollo_service_connected") {
      snap.service_connected = sample->value;
    } else if (sample->name == "apollo_service_connects_total") {
      snap.service_connects = sample->value;
    } else if (sample->name == "apollo_service_batches_total") {
      snap.service_batches = sample->value;
    } else if (sample->name == "apollo_service_samples_total") {
      snap.service_samples = sample->value;
    } else if (sample->name == "apollo_service_bytes_total") {
      snap.service_bytes = sample->value;
    } else if (sample->name == "apollo_service_pushes_total") {
      snap.service_pushes = sample->value;
    } else if (sample->name == "apollo_service_generation") {
      snap.service_generation = sample->value;
    } else if (sample->name == "apollo_service_fallbacks_total") {
      snap.service_fallbacks = sample->value;
    } else if (sample->name == "apollo_served_clients_total") {
      snap.served_clients = sample->value;
    } else if (sample->name == "apollo_served_batches_total") {
      snap.served_batches = sample->value;
    } else if (sample->name == "apollo_served_samples_total") {
      snap.served_samples = sample->value;
    } else if (sample->name == "apollo_served_frames_rejected_total") {
      snap.served_rejected = sample->value;
    } else if (sample->name == "apollo_served_trains_total") {
      snap.served_trains += sample->value;  // summed across result labels
    } else if (sample->name.rfind("apollo_hw_", 0) == 0) {
      if (sample->name == "apollo_hw_provider_info") {
        snap.hw_provider = label("provider");
      } else {
        Snapshot::HwRow& hw = snap.hw[{label("kernel"), label("variant")}];
        if (sample->name == "apollo_hw_windows_total") {
          hw.windows = sample->value;
        } else if (sample->name == "apollo_hw_cycles_total") {
          hw.cycles = sample->value;
        } else if (sample->name == "apollo_hw_ipc") {
          hw.ipc = sample->value;
        } else if (sample->name == "apollo_hw_cache_miss_rate") {
          hw.cache_miss_rate = sample->value;
        } else if (sample->name == "apollo_hw_branch_miss_rate") {
          hw.branch_miss_rate = sample->value;
        } else if (sample->name == "apollo_hw_stall_fraction") {
          hw.stall_fraction = sample->value;
        } else if (sample->name == "apollo_hw_cycles_per_element") {
          hw.cycles_per_element = sample->value;
        }
      }
    } else if (sample->name == "apollo_build_info") {
      auto it = sample->labels.labels.find("version");
      auto sha = sample->labels.labels.find("git_sha");
      if (it != sample->labels.labels.end()) snap.build = it->second;
      if (sha != sample->labels.labels.end()) snap.build += " (git " + sha->second + ")";
    }
  }
  // The exporter emits cumulative buckets in ascending-le order already, but
  // sort defensively: the table must not depend on file ordering.
  for (auto& [kernel, row] : snap.kernels) {
    (void)kernel;
    std::sort(row.buckets.begin(), row.buckets.end());
  }
  return true;
}

void load_fleet(const std::string& path, FleetSnapshot& fleet) {
  std::ifstream in(path);
  if (!in) return;
  fleet.loaded = true;
  std::string line;
  while (std::getline(in, line)) {
    const auto sample = parse_line(line);
    if (!sample) continue;
    const auto client = [&]() -> std::string {
      auto it = sample->labels.labels.find("client");
      return it != sample->labels.labels.end() ? it->second : std::string();
    };
    if (sample->name == "apollo_fleet_clients") {
      fleet.clients = sample->value;
    } else if (sample->name == "apollo_fleet_generation") {
      fleet.generation = sample->value;
    } else if (sample->name == "apollo_fleet_trains_total") {
      fleet.trains = sample->value;
    } else if (sample->name == "apollo_fleet_telemetry_snapshots_total") {
      fleet.telemetry_snapshots = sample->value;
    } else if (sample->name == "apollo_fleet_connected") {
      fleet.rows[client()].connected = sample->value;
    } else if (sample->name == "apollo_fleet_generation_lag") {
      fleet.rows[client()].generation_lag = sample->value;
    } else if (sample->name == "apollo_fleet_staleness_seconds") {
      fleet.rows[client()].staleness_seconds = sample->value;
    } else if (sample->name == "apollo_fleet_last_push_age_seconds") {
      fleet.rows[client()].last_push_age_seconds = sample->value;
    } else if (sample->name == "apollo_fleet_batches_total") {
      fleet.rows[client()].batches = sample->value;
    } else if (sample->name == "apollo_fleet_samples_total") {
      fleet.rows[client()].samples = sample->value;
    } else if (sample->name == "apollo_fleet_slo_breaches_total") {
      fleet.rows[client()].slo_breaches = sample->value;
    } else if (sample->name == "apollo_fleet_regret_stale_seconds_total") {
      fleet.rows[client()].regret_stale_seconds = sample->value;
    }
  }
}

void print_fleet(const FleetSnapshot& fleet) {
  std::printf("\nfleet — daemon gen %.0f | %.0f clients | trains %.0f | telemetry %.0f\n",
              fleet.generation, fleet.clients, fleet.trains, fleet.telemetry_snapshots);
  std::printf("%-20s %5s %5s %9s %9s %8s %9s %8s %11s\n", "client", "up", "lag", "stale",
              "push-age", "batches", "samples", "breaches", "stale-regret");
  for (const auto& [client, row] : fleet.rows) {
    char push_age[32];
    if (row.last_push_age_seconds >= 0.0) {
      std::snprintf(push_age, sizeof(push_age), "%7.1fs", row.last_push_age_seconds);
    } else {
      std::snprintf(push_age, sizeof(push_age), "%8s", "-");
    }
    std::printf("%-20s %5s %5.0f %7.1fs %9s %8.0f %9.0f %8.0f %9.1fms\n", client.c_str(),
                row.connected > 0.0 ? "yes" : "no", row.generation_lag, row.staleness_seconds,
                push_age, row.batches, row.samples, row.slo_breaches,
                row.regret_stale_seconds * 1e3);
  }
}

/// Minimal field extraction from the fixed-shape decision JSONL lines.
std::string json_string_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::string out;
  std::size_t pos = at + needle.size();
  while (pos < line.size() && line[pos] != '"') {
    if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;
    out += line[pos++];
  }
  return out;
}

double json_number_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + needle.size());
}

void load_decisions(const std::string& path, Snapshot& snap) {
  // read_complete_lines drops a final unterminated line, so tailing a file a
  // writer is appending to mid-flush never misparses the torn record.
  const auto lines = apollo::telemetry::read_complete_lines(path);
  if (!lines) return;
  // Lines are grouped per kernel, oldest first: the last line seen per
  // kernel is its freshest sampled decision.
  for (const std::string& line : *lines) {
    const std::string kernel = json_string_field(line, "kernel");
    if (kernel.empty()) continue;
    KernelRow& row = snap.kernels[kernel];
    row.predicted = json_string_field(line, "predicted");
    row.predicted_seconds = json_number_field(line, "predicted_seconds");
    row.observed_seconds = json_number_field(line, "observed_seconds");
  }
}

void print_snapshot(const Snapshot& snap, double service_batches_per_s) {
  std::printf("apollo_top — %s\n", snap.build.empty() ? apollo::build_info_string().c_str()
                                                      : snap.build.c_str());
  std::printf("model gen %.0f | hot swaps %.0f | explores %.0f | samples %.0f pushed / %.0f "
              "dropped / %.0f buffered\n",
              snap.model_generation, snap.hot_swaps, snap.explores, snap.samples_pushed,
              snap.samples_dropped, snap.buffer_occupancy);
  // Decision-path pane: how tuned launches were resolved — served from the
  // per-site inline cache, or evaluated (compiled flat table vs pointer walk).
  if (snap.inline_hits > 0.0 || snap.inline_misses > 0.0 || snap.flat_evals > 0.0) {
    const double lookups = snap.inline_hits + snap.inline_misses;
    const double hit_pct = lookups > 0.0 ? snap.inline_hits / lookups * 100.0 : 0.0;
    const double pointer_evals = std::max(0.0, snap.inline_misses - snap.flat_evals);
    std::printf("dispatch: inline cache %.0f hits / %.0f misses (%.1f%% hit) | evals %.0f "
                "flat, %.0f pointer\n",
                snap.inline_hits, snap.inline_misses, hit_pct, snap.flat_evals, pointer_evals);
  }
  // Search pane: variant-space coverage of the tuning sweeps. Exhaustive
  // runs measure everything (skipped stays 0); two-stage runs show the
  // measured fraction the budget actually paid for.
  if (snap.search_measured > 0.0 || snap.search_skipped > 0.0 || snap.search_seeded > 0.0) {
    const double space = snap.search_measured + snap.search_skipped;
    const double measured_pct = space > 0.0 ? snap.search_measured / space * 100.0 : 0.0;
    std::printf("search: %.0f measured / %.0f skipped (%.1f%% of space) | %.0f model-seeded\n",
                snap.search_measured, snap.search_skipped, measured_pct, snap.search_seeded);
  }
  // Fork-join executor pane: how regions launched and how their waits ended.
  if (snap.pool_launches > 0.0 || snap.pool_inline > 0.0) {
    const double waits = snap.pool_spin + snap.pool_park;
    const double spin_pct = waits > 0.0 ? snap.pool_spin / waits * 100.0 : 0.0;
    std::printf("pool: %.0f fork-join / %.0f inline | wakeups %.0f | waits %.1f%% spin, "
                "%.1f%% park\n",
                snap.pool_launches, snap.pool_inline, snap.pool_wakeups, spin_pct,
                waits > 0.0 ? 100.0 - spin_pct : 0.0);
  }
  // Service pane: the process is a fleet client (apollo_service_*), a
  // trainer daemon (apollo_served_*), or — in single-process tests — both.
  if (snap.service_connects > 0.0 || snap.service_fallbacks > 0.0) {
    std::printf("service: %s | gen %.0f | %.0f batches (%.1f/s) | %.0f samples | %.1f KiB "
                "| pushes %.0f | fallbacks %.0f\n",
                snap.service_connected > 0.0 ? "connected" : "disconnected",
                snap.service_generation, snap.service_batches, service_batches_per_s,
                snap.service_samples, snap.service_bytes / 1024.0, snap.service_pushes,
                snap.service_fallbacks);
  }
  if (snap.served_clients > 0.0) {
    std::printf("served: %.0f clients | %.0f batches | %.0f samples | trains %.0f | "
                "rejected %.0f\n",
                snap.served_clients, snap.served_batches, snap.served_samples,
                snap.served_trains, snap.served_rejected);
  }
  std::printf("\n");
  std::printf("%-24s %10s %14s %6s %9s %9s %8s %9s\n", "kernel", "launches", "top-variant",
              "share", "p50-dec", "p95-dec", "pred", "pred/obs");
  for (const auto& [kernel, row] : snap.kernels) {
    std::string top_variant = "-";
    double top_count = 0.0;
    double total = 0.0;
    for (const auto& [variant, count] : row.variants) {
      total += count;
      if (count > top_count) {
        top_count = count;
        top_variant = variant;
      }
    }
    const double share = total > 0.0 ? top_count / total * 100.0 : 0.0;
    const double p50 = bucket_quantile(row.buckets, row.decision_count, 0.50);
    const double p95 = bucket_quantile(row.buckets, row.decision_count, 0.95);
    const double ratio =
        row.observed_seconds > 0.0 ? row.predicted_seconds / row.observed_seconds : 0.0;
    std::printf("%-24s %10.0f %14s %5.1f%% %7.1fus %7.1fus %8s %9.2f\n", kernel.c_str(),
                row.launches, top_variant.c_str(), share, p50 * 1e6, p95 * 1e6,
                row.predicted.empty() ? "-" : row.predicted.c_str(), ratio);
    if (row.drift_fires > 0.0) {
      std::printf("%-24s   drift fires: %.0f\n", "", row.drift_fires);
    }
  }

  // Model-quality pane: only once a tuned launch was scored (the gauges
  // exist only with APOLLO_TELEMETRY=1 in Tune/Adapt mode).
  bool any_quality = false;
  double launches_total = 0.0;
  for (const auto& [kernel, row] : snap.kernels) {
    (void)kernel;
    launches_total += row.launches;
    if (row.accuracy >= 0.0) any_quality = true;
  }
  if (any_quality || snap.probes > 0.0) {
    std::printf("\nmodel quality — probes %.0f / %.0f dispatches\n", snap.probes, launches_total);
    std::printf("%-24s %9s %12s\n", "kernel", "accuracy", "regret");
    for (const auto& [kernel, row] : snap.kernels) {
      if (row.accuracy < 0.0) continue;
      std::printf("%-24s %8.1f%% %10.3fms\n", kernel.c_str(), row.accuracy * 100.0,
                  row.regret_seconds * 1e3);
    }
  }

  // Hardware-counter pane: only when a run profiled with APOLLO_HW_STRIDE>0.
  if (!snap.hw.empty()) {
    std::printf("\nhw counters — provider %s\n",
                snap.hw_provider.empty() ? "?" : snap.hw_provider.c_str());
    std::printf("%-24s %-14s %8s %5s %9s %9s %7s %9s\n", "kernel", "variant", "windows", "ipc",
                "cmiss/ki", "bmiss/ki", "stall", "cyc/elem");
    for (const auto& [key, hw] : snap.hw) {
      if (hw.windows <= 0.0) continue;
      std::printf("%-24s %-14s %8.0f %5.2f %9.3f %9.3f %6.1f%% %9.1f\n", key.first.c_str(),
                  key.second.c_str(), hw.windows, hw.ipc, hw.cache_miss_rate * 1e3,
                  hw.branch_miss_rate * 1e3, hw.stall_fraction * 100.0, hw.cycles_per_element);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = "apollo_metrics.prom";
  std::string decisions_path = "apollo_decisions.jsonl";
  std::string fleet_path;
  double interval = 2.0;
  bool once = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--version") {
      std::printf("%s\n", apollo::build_info_string().c_str());
      return 0;
    } else if (arg == "--metrics") {
      if (const char* v = next()) metrics_path = v;
    } else if (arg == "--decisions") {
      if (const char* v = next()) decisions_path = v;
    } else if (arg == "--fleet") {
      if (const char* v = next()) fleet_path = v;
    } else if (arg == "--interval") {
      if (const char* v = next()) interval = std::atof(v);
    } else if (arg == "--once") {
      once = true;
    } else {
      std::fprintf(stderr,
                   "usage: apollo_top [--metrics FILE] [--decisions FILE] [--fleet FILE] "
                   "[--interval SEC] [--once] [--version]\n");
      return 2;
    }
  }

  // Previous refresh's shipped-batch counter, for the service pane's rate.
  double prev_service_batches = -1.0;
  auto prev_refresh = std::chrono::steady_clock::now();
  for (;;) {
    Snapshot snap;
    FleetSnapshot fleet;
    if (!fleet_path.empty()) load_fleet(fleet_path, fleet);
    const bool have_metrics = load_metrics(metrics_path, snap);
    if (!have_metrics && !fleet.loaded) {
      std::fprintf(stderr,
                   "apollo_top: cannot read %s (is the run exporting with APOLLO_TELEMETRY=1 "
                   "and APOLLO_METRICS_FILE set?)\n",
                   metrics_path.c_str());
      if (once) return 1;
    } else {
      load_decisions(decisions_path, snap);
      const auto now = std::chrono::steady_clock::now();
      const double elapsed = std::chrono::duration<double>(now - prev_refresh).count();
      double batches_per_s = 0.0;
      if (prev_service_batches >= 0.0 && elapsed > 0.0 &&
          snap.service_batches >= prev_service_batches) {
        batches_per_s = (snap.service_batches - prev_service_batches) / elapsed;
      }
      prev_service_batches = snap.service_batches;
      prev_refresh = now;
      if (!once) std::printf("\033[2J\033[H");  // clear screen between refreshes
      if (have_metrics) print_snapshot(snap, batches_per_s);
      if (fleet.loaded) print_fleet(fleet);
    }
    if (once) return 0;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(std::max(0.1, interval)));
  }
}
