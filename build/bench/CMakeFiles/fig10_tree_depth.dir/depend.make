# Empty dependencies file for fig10_tree_depth.
# This may be replaced when dependencies are built.
