// End-to-end integration tests: the full Apollo workflow (record -> train ->
// persist -> load -> tune) on the real proxy applications, plus
// cross-application model reuse and the strong-scaling accounting path.

#include <gtest/gtest.h>

#include <filesystem>

#include "apps/application.hpp"
#include "core/cluster_accountant.hpp"
#include "core/runtime.hpp"
#include "core/trainer.hpp"
#include "ml/cross_validation.hpp"
#include "perf/blackboard.hpp"

using namespace apollo;

namespace {

class IntegrationTest : public ::testing::Test {
protected:
  void SetUp() override {
    Runtime::instance().reset();
    perf::Blackboard::instance().clear();
  }
  void TearDown() override {
    Runtime::instance().reset();
    perf::Blackboard::instance().clear();
  }
};

std::vector<perf::SampleRecord> record_app(apps::Application& app, int steps) {
  auto& rt = Runtime::instance();
  rt.set_mode(Mode::Record);
  rt.clear_records();
  for (const auto& problem : app.problems()) {
    for (int size : app.training_sizes()) {
      app.run(apps::RunConfig{problem, size, steps});
    }
  }
  auto records = rt.records();
  rt.clear_records();
  rt.set_mode(Mode::Off);
  return records;
}

double tuned_total(apps::Application& app, const apps::RunConfig& cfg, const TunerModel& model) {
  auto& rt = Runtime::instance();
  rt.set_mode(Mode::Tune);
  rt.set_policy_model(model);
  rt.reset_stats();
  app.run(cfg);
  const double total = rt.stats().total_seconds;
  rt.clear_models();
  rt.set_mode(Mode::Off);
  return total;
}

double static_total(apps::Application& app, const apps::RunConfig& cfg,
                    std::optional<raja::PolicyType> override_policy) {
  auto& rt = Runtime::instance();
  rt.set_mode(Mode::Off);
  rt.set_default_policy_override(override_policy);
  rt.reset_stats();
  app.run(cfg);
  const double total = rt.stats().total_seconds;
  rt.set_default_policy_override(std::nullopt);
  return total;
}

}  // namespace

TEST_F(IntegrationTest, FullWorkflowOnLulesh) {
  auto app = apps::make_lulesh();
  const auto records = record_app(*app, 4);
  ASSERT_GT(records.size(), 1000u);

  // Train, persist, reload — the no-recompilation deployment path.
  const TunerModel trained = Trainer::train(records, TunedParameter::Policy);
  const std::string path =
      (std::filesystem::temp_directory_path() / "apollo_it_lulesh.model").string();
  trained.save_file(path);
  const TunerModel model = TunerModel::load_file(path);
  std::filesystem::remove(path);

  const apps::RunConfig cfg{"sedov", 18, 4};
  const double omp_everywhere =
      static_total(*app, cfg, raja::PolicyType::seq_segit_omp_parallel_for_exec);
  const double seq_everywhere =
      static_total(*app, cfg, raja::PolicyType::seq_segit_seq_exec);
  const double tuned = tuned_total(*app, cfg, model);

  EXPECT_LT(tuned, omp_everywhere) << "tuning must beat OpenMP-everywhere";
  EXPECT_LT(tuned, seq_everywhere) << "tuning must beat sequential-everywhere";
}

TEST_F(IntegrationTest, ModelAccuracyHighForPolicy) {
  auto app = apps::make_lulesh();
  const auto records = record_app(*app, 3);
  const LabeledData data = Trainer::build_labeled_data(records, TunedParameter::Policy);
  ASSERT_GT(data.dataset.num_rows(), 200u);
  const auto cv = ml::cross_validate(data.dataset, ml::TreeParams{}, 5, 42);
  EXPECT_GT(cv.mean_accuracy, 0.85);  // paper: 92-98% for execution policy
}

TEST_F(IntegrationTest, ChunkModelLessAccurateThanPolicy) {
  auto app = apps::make_lulesh();
  const auto records = record_app(*app, 3);
  const LabeledData policy = Trainer::build_labeled_data(records, TunedParameter::Policy);
  const LabeledData chunk = Trainer::build_labeled_data(records, TunedParameter::ChunkSize);
  const auto policy_cv = ml::cross_validate(policy.dataset, ml::TreeParams{}, 5, 42);
  const auto chunk_cv = ml::cross_validate(chunk.dataset, ml::TreeParams{}, 5, 42);
  EXPECT_LT(chunk_cv.mean_accuracy, policy_cv.mean_accuracy);  // Table II's contrast
}

TEST_F(IntegrationTest, CleverLeafTuningBeatsDefault) {
  auto app = apps::make_cleverleaf();
  auto& rt = Runtime::instance();
  rt.set_mode(Mode::Record);
  rt.clear_records();
  app->run(apps::RunConfig{"sedov", 32, 4});
  const auto records = rt.records();
  rt.clear_records();
  const TunerModel model = Trainer::train(records, TunedParameter::Policy);

  const apps::RunConfig cfg{"sedov", 32, 4};
  const double default_total =
      static_total(*app, cfg, raja::PolicyType::seq_segit_omp_parallel_for_exec);
  const double tuned = tuned_total(*app, cfg, model);
  EXPECT_GT(default_total / tuned, 1.5);  // AMR patches: the big win
}

TEST_F(IntegrationTest, CrossApplicationModelTransfer) {
  // LULESH-trained models apply to CleverLeaf (the paper's Table III):
  // predictions must be well-formed and capture the num_indices crossover.
  auto lulesh = apps::make_lulesh();
  const auto records = record_app(*lulesh, 3);
  const TunerModel model = Trainer::train(records, TunedParameter::Policy);

  auto clover = apps::make_cleverleaf();
  const double tuned = tuned_total(*clover, apps::RunConfig{"sedov", 32, 3}, model);
  const double default_total = static_total(
      *clover, apps::RunConfig{"sedov", 32, 3}, raja::PolicyType::seq_segit_omp_parallel_for_exec);
  EXPECT_GT(tuned, 0.0);
  EXPECT_LT(tuned, default_total);  // transfer still beats the static default
}

TEST_F(IntegrationTest, RetrainWithoutRecompilePicksUpNewModel) {
  // Two different models loaded into the same runtime change decisions.
  auto& rt = Runtime::instance();
  auto app = apps::make_lulesh();
  const auto records = record_app(*app, 3);
  const TunerModel good = Trainer::train(records, TunedParameter::Policy);

  // A degenerate "model" trained only on tiny launches predicts seq always.
  std::vector<perf::SampleRecord> tiny;
  for (const auto& r : records) {
    if (r.at("num_indices").as_int() < 500) tiny.push_back(r);
  }
  ASSERT_FALSE(tiny.empty());
  const TunerModel degenerate = Trainer::train(tiny, TunedParameter::Policy);

  const apps::RunConfig cfg{"sedov", 18, 3};
  const double with_good = tuned_total(*app, cfg, good);
  const double with_degenerate = tuned_total(*app, cfg, degenerate);
  EXPECT_NE(with_good, with_degenerate);
}

TEST_F(IntegrationTest, StrongScalingAccountingImproves) {
  // Fig. 12's mechanism: more ranks -> smaller per-rank share -> faster steps.
  auto& rt = Runtime::instance();
  auto app = apps::make_cleverleaf();

  auto run_with_ranks = [&](unsigned ranks) {
    ClusterAccountant acc(sim::ClusterModel{}, ranks);
    rt.set_cluster_accountant(&acc);
    rt.reset_stats();
    app->run(apps::RunConfig{"sedov", 32, 3});
    rt.set_cluster_accountant(nullptr);
    return acc.total_seconds();
  };

  const double one = run_with_ranks(1);
  const double four = run_with_ranks(4);
  EXPECT_LT(four, one);
  EXPECT_GT(four, one / 8.0);  // but not superlinear
}

TEST_F(IntegrationTest, SweepAndForcedProtocolsLabelIdentically) {
  // The paper records one run per parameter value; we default to pricing all
  // variants in one run. With measurement noise disabled, the two protocols
  // must produce identical labeled datasets (DESIGN.md substitution 7).
  auto& rt = Runtime::instance();
  sim::MachineConfig config;
  config.noise_sigma = 0.0;
  rt.set_machine(sim::MachineModel(config));

  auto app = apps::make_lulesh();
  rt.set_mode(Mode::Record);

  // Protocol A: sweep.
  TrainingConfig sweep;
  sweep.chunk_values.clear();
  rt.set_training_config(sweep);
  rt.clear_records();
  app->run(apps::RunConfig{"sedov", 8, 2});
  const auto sweep_records = rt.records();

  // Protocol B: two forced runs (seq, then omp-default), like the paper.
  TrainingConfig forced;
  forced.sweep_variants = false;
  std::vector<perf::SampleRecord> forced_records;
  for (auto policy : {raja::PolicyType::seq_segit_seq_exec,
                      raja::PolicyType::seq_segit_omp_parallel_for_exec}) {
    forced.forced_policy = policy;
    rt.set_training_config(forced);
    rt.clear_records();
    app->run(apps::RunConfig{"sedov", 8, 2});
    const auto& run_records = rt.records();
    forced_records.insert(forced_records.end(), run_records.begin(), run_records.end());
  }
  rt.clear_records();

  const LabeledData a = Trainer::build_labeled_data(sweep_records, TunedParameter::Policy);
  const LabeledData b = Trainer::build_labeled_data(forced_records, TunedParameter::Policy);
  ASSERT_EQ(a.dataset.num_rows(), b.dataset.num_rows());
  ASSERT_EQ(a.dataset.feature_names(), b.dataset.feature_names());
  // Row order is grouping-order; both protocols visit launches in the same
  // deterministic order, so rows correspond 1:1.
  for (std::size_t r = 0; r < a.dataset.num_rows(); ++r) {
    EXPECT_EQ(a.dataset.row(r), b.dataset.row(r)) << "row " << r;
    EXPECT_EQ(a.dataset.label(r), b.dataset.label(r)) << "row " << r;
  }
}

TEST_F(IntegrationTest, EnvironmentPolicyForcesRecordingProtocol) {
  setenv("RAJA_POLICY", "seq", 1);
  // A fresh TrainingConfig would be overridden at Runtime construction; the
  // singleton already exists, so apply the same logic through the API the
  // constructor uses.
  const auto env = raja::apollo::policy_from_env();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->policy, raja::PolicyType::seq_segit_seq_exec);
  unsetenv("RAJA_POLICY");
}

TEST_F(IntegrationTest, RecordsSurviveFileRoundTripIntoTraining) {
  auto app = apps::make_ares();
  auto& rt = Runtime::instance();
  rt.set_mode(Mode::Record);
  app->run(apps::RunConfig{"sedov", 24, 3});
  const std::string path =
      (std::filesystem::temp_directory_path() / "apollo_it_records.txt").string();
  std::filesystem::remove(path);
  rt.flush_records(path);
  const auto records = perf::read_records_file(path);
  std::filesystem::remove(path);
  ASSERT_GT(records.size(), 100u);
  const TunerModel model = Trainer::train(records, TunedParameter::Policy);
  EXPECT_GT(model.tree().node_count(), 0u);
}
