#include "core/model_set.hpp"

#include <fstream>
#include <stdexcept>

#include "core/features.hpp"

namespace apollo {

ModelSet ModelSet::train_per_kernel(const std::vector<perf::SampleRecord>& records,
                                    TunedParameter parameter, const ml::TreeParams& params) {
  std::map<std::string, std::vector<perf::SampleRecord>> by_kernel;
  for (const auto& record : records) {
    auto it = record.find(features::kLoopId);
    if (it == record.end()) continue;
    by_kernel[it->second.as_string()].push_back(record);
  }
  if (by_kernel.empty()) throw std::invalid_argument("ModelSet: no records with loop_id");

  ModelSet set;
  set.fallback_ = Trainer::train(records, parameter, params);
  for (auto& [loop_id, kernel_records] : by_kernel) {
    try {
      set.models_.emplace(loop_id, Trainer::train(kernel_records, parameter, params));
    } catch (const std::invalid_argument&) {
      // Not enough usable samples for this kernel: the fallback covers it.
    }
  }
  return set;
}

const TunerModel& ModelSet::model_for(const std::string& loop_id) const {
  auto it = models_.find(loop_id);
  if (it != models_.end()) return it->second;
  if (!fallback_) throw std::logic_error("ModelSet: no fallback model");
  return *fallback_;
}

int ModelSet::predict(const std::string& loop_id, const TunerModel::Resolver& resolve) const {
  return model_for(loop_id).predict(resolve);
}

const std::string& ModelSet::label_name(const std::string& loop_id, int label) const {
  return model_for(loop_id).label_name(label);
}

std::size_t ModelSet::total_nodes() const {
  std::size_t nodes = fallback_ ? fallback_->tree().node_count() : 0;
  for (const auto& [loop_id, model] : models_) nodes += model.tree().node_count();
  return nodes;
}

void ModelSet::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("ModelSet: cannot open " + path);
  out << "apollo-model-set 1\n";
  out << models_.size() << '\n';
  if (!fallback_) throw std::logic_error("ModelSet: no fallback to save");
  fallback_->save(out);
  for (const auto& [loop_id, model] : models_) {
    out << "kernel " << perf::escape_cell(loop_id) << '\n';
    model.save(out);
  }
}

ModelSet ModelSet::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ModelSet: cannot open " + path);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "apollo-model-set" || version != 1) {
    throw std::runtime_error("ModelSet: bad header");
  }
  std::size_t count = 0;
  in >> count;
  ModelSet set;
  set.fallback_ = TunerModel::load(in);
  for (std::size_t m = 0; m < count; ++m) {
    std::string keyword, escaped;
    in >> keyword >> escaped;
    if (keyword != "kernel") throw std::runtime_error("ModelSet: expected kernel");
    set.models_.emplace(perf::unescape_cell(escaped), TunerModel::load(in));
  }
  return set;
}

}  // namespace apollo
