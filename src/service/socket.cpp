#include "service/socket.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace apollo::service {

namespace {

/// sun_path is a fixed 108-byte array; a longer path cannot be bound.
bool fill_addr(const std::string& path, sockaddr_un& addr, std::string* error) {
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long (" + std::to_string(path.size()) + " bytes, max " +
               std::to_string(sizeof(addr.sun_path) - 1) + "): " + path;
    }
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

int listen_unix(const std::string& path, int backlog, std::string* error) {
  sockaddr_un addr{};
  if (!fill_addr(path, addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // a stale socket file from a dead daemon blocks bind
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::string("bind ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    if (error != nullptr) *error = std::string("listen ") + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (!fill_addr(path, addr, nullptr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int accept_unix(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int poll_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return rc;
    return 1;  // POLLIN, POLLHUP, or POLLERR: a read will not block
  }
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

// --- FrameConn ----------------------------------------------------------------

FrameConn& FrameConn::operator=(FrameConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel), std::memory_order_release);
    error_ = std::move(other.error_);
  }
  return *this;
}

void FrameConn::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void FrameConn::shutdown_now() noexcept {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void FrameConn::fail(std::string reason) noexcept {
  error_ = std::move(reason);
  close();
}

bool FrameConn::send_all(const char* data, std::size_t size) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return false;
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE here instead of killing the
    // process with SIGPIPE — the client's whole fallback story depends on it.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool FrameConn::send(FrameType type, std::string_view payload) {
  if (!valid()) return false;
  std::string frame;
  try {
    frame = encode_frame(type, payload);
  } catch (const WireError& error) {
    fail(error.what());
    return false;
  }
  const std::lock_guard<std::mutex> lock(write_mutex_);
  if (!valid()) return false;
  if (!send_all(frame.data(), frame.size())) {
    fail(std::string("send ") + frame_type_name(type) + ": " + std::strerror(errno));
    return false;
  }
  return true;
}

bool FrameConn::recv_exact(char* data, std::size_t size, int timeout_ms) {
  // The fd is loaded once: only the owning (receiving) thread closes, so it
  // cannot change under us; shutdown_now() from elsewhere leaves it open.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return false;
  std::size_t got = 0;
  while (got < size) {
    if (timeout_ms >= 0) {
      const int rc = poll_readable(fd, timeout_ms);
      if (rc <= 0) {
        // Timeout mid-frame is a protocol failure (a frame, once started,
        // must complete); timeout before the first byte is handled by recv().
        if (got > 0 || rc < 0) fail("recv: timed out mid-frame");
        return false;
      }
    }
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(std::string("recv: ") + std::strerror(errno));
      return false;
    }
    if (n == 0) {
      fail(got == 0 ? "peer closed" : "peer closed mid-frame");
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

bool FrameConn::readable(int timeout_ms) {
  const int fd = fd_.load(std::memory_order_acquire);
  return fd >= 0 && poll_readable(fd, timeout_ms) == 1;
}

std::optional<std::pair<FrameType, std::string>> FrameConn::recv(int timeout_ms) {
  if (!valid()) return std::nullopt;
  char header_bytes[kFrameHeaderBytes];
  if (!recv_exact(header_bytes, sizeof(header_bytes), timeout_ms)) return std::nullopt;
  FrameHeader header;
  std::string payload;
  try {
    header = decode_frame_header(header_bytes);
    payload.resize(header.payload_len);
    // The header arrived, so the payload must follow promptly even when the
    // caller asked for a non-blocking first byte.
    const int body_timeout = timeout_ms < 0 ? -1 : std::max(timeout_ms, 1000);
    if (header.payload_len > 0 && !recv_exact(payload.data(), payload.size(), body_timeout)) {
      return std::nullopt;
    }
    check_payload(header, payload);
  } catch (const WireError& error) {
    fail(error.what());
    return std::nullopt;
  }
  return std::make_pair(header.type, std::move(payload));
}

}  // namespace apollo::service
