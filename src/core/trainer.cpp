#include "core/trainer.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "core/features.hpp"

namespace apollo {

namespace {

/// Mean-runtime accumulator per (row, label).
struct RuntimeAccumulator {
  double sum = 0.0;
  std::int64_t count = 0;
  [[nodiscard]] double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

std::string record_param_value(const perf::SampleRecord& record, TunedParameter parameter) {
  switch (parameter) {
    case TunedParameter::Policy: return record.at(features::kParamPolicy).as_string();
    case TunedParameter::ChunkSize:
      return std::to_string(record.at(features::kParamChunk).as_int());
    case TunedParameter::Threads:
      return std::to_string(record.at(features::kParamThreads).as_int());
  }
  return {};
}

}  // namespace

double LabeledData::total_runtime_oracle() const {
  double total = 0.0;
  for (std::size_t r = 0; r < runtimes.size(); ++r) {
    double best = std::numeric_limits<double>::max();
    for (const auto& [label, seconds] : runtimes[r]) best = std::min(best, seconds);
    total += best * static_cast<double>(row_counts[r]);
  }
  return total;
}

double LabeledData::total_runtime_static(int label) const {
  double total = 0.0;
  for (std::size_t r = 0; r < runtimes.size(); ++r) {
    auto it = runtimes[r].find(label);
    if (it == runtimes[r].end()) {
      throw std::invalid_argument("LabeledData: static label missing for a row");
    }
    total += it->second * static_cast<double>(row_counts[r]);
  }
  return total;
}

double LabeledData::total_runtime_predicted(const std::vector<int>& predictions) const {
  if (predictions.size() != runtimes.size()) {
    throw std::invalid_argument("LabeledData: prediction count mismatch");
  }
  double total = 0.0;
  for (std::size_t r = 0; r < runtimes.size(); ++r) {
    auto it = runtimes[r].find(predictions[r]);
    if (it == runtimes[r].end()) {
      // The model picked a value never measured for this launch; charge the
      // worst observed value (pessimistic but defined).
      double worst = 0.0;
      for (const auto& [label, seconds] : runtimes[r]) worst = std::max(worst, seconds);
      total += worst * static_cast<double>(row_counts[r]);
    } else {
      total += it->second * static_cast<double>(row_counts[r]);
    }
  }
  return total;
}

LabeledData Trainer::build_labeled_data(const std::vector<perf::SampleRecord>& records,
                                        TunedParameter parameter) {
  // Chunk-size models only make sense over OpenMP executions.
  std::vector<const perf::SampleRecord*> usable;
  usable.reserve(records.size());
  for (const auto& record : records) {
    if (!record.count(features::kMeasureRuntime)) continue;
    const auto policy_it = record.find(features::kParamPolicy);
    const auto chunk_it = record.find(features::kParamChunk);
    const auto threads_it = record.find(features::kParamThreads);
    const bool is_omp = policy_it == record.end() || policy_it->second.as_string() == "omp";
    const bool default_chunk = chunk_it == record.end() || chunk_it->second.as_int() <= 0;
    switch (parameter) {
      case TunedParameter::Policy:
        // Policy labels compare seq against OpenMP at the *default* schedule
        // and team size; sweep samples of the other parameters are excluded.
        if (policy_it == record.end() || !default_chunk) continue;
        if (threads_it != record.end() && policy_it->second.as_string() == "omp" &&
            threads_it->second.as_int() > 0) {
          continue;  // explicit team-size sample, not the default
        }
        break;
      case TunedParameter::ChunkSize:
        // Chunk models choose among the explicit values (paper: 1..1024) on
        // OpenMP executions; the default-schedule sample is not a label.
        if (chunk_it == record.end() || chunk_it->second.as_int() <= 0 || !is_omp) continue;
        break;
      case TunedParameter::Threads:
        // Team-size models: OpenMP at the default schedule, explicit teams.
        if (threads_it == record.end() || threads_it->second.as_int() <= 0 || !is_omp ||
            !default_chunk) {
          continue;
        }
        break;
    }
    usable.push_back(&record);
  }
  if (usable.empty()) throw std::invalid_argument("Trainer: no usable training records");

  // Feature schema: union of non-meta keys, sorted for stability.
  std::set<std::string> key_set;
  for (const auto* record : usable) {
    for (const auto& [key, value] : *record) {
      if (!features::is_meta_key(key)) key_set.insert(key);
    }
  }
  const std::vector<std::string> feature_keys(key_set.begin(), key_set.end());

  // Categorical dictionaries: every feature that ever carries a string.
  LabeledData data;
  for (const auto& key : feature_keys) {
    std::set<std::string> categories;
    bool is_categorical = false;
    for (const auto* record : usable) {
      auto it = record->find(key);
      if (it != record->end() && it->second.is_string()) {
        is_categorical = true;
        categories.insert(it->second.as_string());
      }
    }
    if (is_categorical) {
      data.dictionaries[key] = std::vector<std::string>(categories.begin(), categories.end());
    }
  }

  // Label vocabulary (sorted: "omp"<"seq" lexicographically for policy;
  // numeric ascending for chunk sizes).
  std::vector<std::string> label_values;
  {
    std::set<std::string> values;
    for (const auto* record : usable) values.insert(record_param_value(*record, parameter));
    label_values.assign(values.begin(), values.end());
    if (parameter != TunedParameter::Policy) {  // numeric label vocabularies
      std::sort(label_values.begin(), label_values.end(),
                [](const std::string& a, const std::string& b) { return std::stoll(a) < std::stoll(b); });
    }
  }
  const auto label_index = [&](const std::string& value) {
    auto it = std::find(label_values.begin(), label_values.end(), value);
    return static_cast<int>(it - label_values.begin());
  };

  const auto encode = [&](const std::string& key, const perf::SampleRecord& record) -> double {
    auto it = record.find(key);
    if (it == record.end()) return -1.0;
    if (!it->second.is_string()) return it->second.as_number();
    const auto& categories = data.dictionaries.at(key);
    auto cat = std::find(categories.begin(), categories.end(), it->second.as_string());
    return static_cast<double>(cat - categories.begin());
  };

  // Group samples by encoded feature vector.
  std::map<std::vector<double>, std::size_t> group_of;
  std::vector<std::map<int, RuntimeAccumulator>> accumulators;
  std::vector<std::vector<double>> group_features;
  std::vector<std::string> group_loop_ids;
  std::vector<std::int64_t> group_counts;

  for (const auto* record : usable) {
    std::vector<double> row;
    row.reserve(feature_keys.size());
    for (const auto& key : feature_keys) row.push_back(encode(key, *record));

    auto [it, inserted] = group_of.try_emplace(row, accumulators.size());
    if (inserted) {
      accumulators.emplace_back();
      group_features.push_back(row);
      auto loop_it = record->find(features::kLoopId);
      group_loop_ids.push_back(loop_it != record->end() ? loop_it->second.as_string() : "");
      group_counts.push_back(0);
    }
    const std::size_t group = it->second;
    auto& acc = accumulators[group][label_index(record_param_value(*record, parameter))];
    acc.sum += record->at(features::kMeasureRuntime).as_number();
    acc.count += 1;
  }

  // Each group contributed `count` samples across parameter variants; the
  // number of *launches* it represents is the max samples seen for any one
  // variant (a full sweep measures each variant once per launch).
  data.dataset = ml::Dataset(feature_keys, label_values);
  data.runtimes.reserve(accumulators.size());
  for (std::size_t g = 0; g < accumulators.size(); ++g) {
    int best_label = -1;
    double best_runtime = std::numeric_limits<double>::max();
    std::map<int, double> means;
    std::int64_t launches = 1;
    for (const auto& [label, acc] : accumulators[g]) {
      const double mean = acc.mean();
      means[label] = mean;
      launches = std::max(launches, acc.count);
      if (mean < best_runtime) {
        best_runtime = mean;
        best_label = label;
      }
    }
    data.dataset.add_row(group_features[g], best_label);
    data.runtimes.push_back(std::move(means));
    data.row_loop_ids.push_back(group_loop_ids[g]);
    data.row_counts.push_back(launches);
  }
  return data;
}

TunerModel Trainer::train(const LabeledData& data, TunedParameter parameter,
                          const ml::TreeParams& params) {
  ml::DecisionTree tree = ml::DecisionTree::fit(data.dataset, params);
  return TunerModel(parameter, std::move(tree), data.dictionaries);
}

TunerModel Trainer::train(const std::vector<perf::SampleRecord>& records, TunedParameter parameter,
                          const ml::TreeParams& params) {
  return train(build_labeled_data(records, parameter), parameter, params);
}

}  // namespace apollo
