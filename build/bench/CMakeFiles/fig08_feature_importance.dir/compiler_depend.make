# Empty compiler generated dependencies file for fig08_feature_importance.
# This may be replaced when dependencies are built.
