#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace apollo::ml {

namespace {

double gini_from_counts(const std::vector<std::int64_t>& counts, std::int64_t total) {
  if (total <= 0) return 0.0;
  double sum_sq = 0.0;
  for (std::int64_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int argmax_count(const std::vector<std::int64_t>& counts) {
  return static_cast<int>(std::max_element(counts.begin(), counts.end()) - counts.begin());
}

}  // namespace

/// Builds the flat node array recursively. Kept out of the public header.
class TreeBuilder {
public:
  TreeBuilder(const Dataset& data, const TreeParams& params) : data_(data), params_(params) {}

  DecisionTree build() {
    DecisionTree tree;
    tree.feature_names_ = data_.feature_names();
    tree.label_names_ = data_.label_names();
    if (data_.num_rows() == 0) return tree;

    std::vector<std::size_t> all(data_.num_rows());
    std::iota(all.begin(), all.end(), std::size_t{0});
    build_node(tree, all, 0);
    return tree;
  }

private:
  struct Split {
    int feature = -1;
    double threshold = 0.0;
    double gain = 0.0;
  };

  std::vector<std::int64_t> class_counts(const std::vector<std::size_t>& rows) const {
    std::vector<std::int64_t> counts(data_.num_classes(), 0);
    for (std::size_t r : rows) counts[static_cast<std::size_t>(data_.label(r))]++;
    return counts;
  }

  Split best_split(const std::vector<std::size_t>& rows, double node_impurity) const {
    const auto n = static_cast<std::int64_t>(rows.size());
    // Like scikit-learn's best splitter, a zero-gain split is still accepted
    // on an impure node (gini gain is never negative); greedy refusal would
    // make symmetric patterns such as XOR unlearnable at any depth.
    Split best;
    best.gain = -1.0;

    std::vector<std::pair<double, int>> column(rows.size());
    const std::vector<std::int64_t> totals = class_counts(rows);
    std::vector<std::int64_t> left(data_.num_classes());

    for (std::size_t f = 0; f < data_.num_features(); ++f) {
      for (std::size_t i = 0; i < rows.size(); ++i) {
        column[i] = {data_.row(rows[i])[f], data_.label(rows[i])};
      }
      std::sort(column.begin(), column.end());
      if (column.front().first == column.back().first) continue;  // constant feature

      std::fill(left.begin(), left.end(), 0);
      std::int64_t n_left = 0;
      for (std::size_t i = 0; i + 1 < column.size(); ++i) {
        left[static_cast<std::size_t>(column[i].second)]++;
        ++n_left;
        if (column[i].first == column[i + 1].first) continue;  // not a boundary
        if (n_left < params_.min_samples_leaf || n - n_left < params_.min_samples_leaf) continue;

        double gini_left = 0.0, gini_right = 0.0;
        {
          double sum_sq_l = 0.0, sum_sq_r = 0.0;
          const double nl = static_cast<double>(n_left);
          const double nr = static_cast<double>(n - n_left);
          for (std::size_t c = 0; c < left.size(); ++c) {
            const double l = static_cast<double>(left[c]);
            const double r = static_cast<double>(totals[c] - left[c]);
            sum_sq_l += (l / nl) * (l / nl);
            sum_sq_r += (r / nr) * (r / nr);
          }
          gini_left = 1.0 - sum_sq_l;
          gini_right = 1.0 - sum_sq_r;
        }
        const double weighted = (static_cast<double>(n_left) * gini_left +
                                 static_cast<double>(n - n_left) * gini_right) /
                                static_cast<double>(n);
        const double gain = node_impurity - weighted;
        if (gain > best.gain + 1e-12) {
          best.feature = static_cast<int>(f);
          best.threshold = 0.5 * (column[i].first + column[i + 1].first);
          best.gain = gain;
        }
      }
    }
    return best;
  }

  int build_node(DecisionTree& tree, const std::vector<std::size_t>& rows, int depth) {
    const auto counts = class_counts(rows);
    const auto n = static_cast<std::int64_t>(rows.size());
    const double impurity = gini_from_counts(counts, n);

    const int index = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(DecisionTree::Node{
        .feature = -1,
        .threshold = 0.0,
        .left = -1,
        .right = -1,
        .label = argmax_count(counts),
        .samples = n,
        .impurity = impurity,
    });

    if (depth >= params_.max_depth || n < params_.min_samples_split || impurity <= 1e-12) {
      return index;
    }

    const Split split = best_split(rows, impurity);
    if (split.feature < 0) return index;

    std::vector<std::size_t> left_rows, right_rows;
    left_rows.reserve(rows.size());
    right_rows.reserve(rows.size());
    for (std::size_t r : rows) {
      const double value = data_.row(r)[static_cast<std::size_t>(split.feature)];
      (value <= split.threshold ? left_rows : right_rows).push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) return index;  // degenerate

    tree.nodes_[static_cast<std::size_t>(index)].feature = split.feature;
    tree.nodes_[static_cast<std::size_t>(index)].threshold = split.threshold;
    const int left_child = build_node(tree, left_rows, depth + 1);
    tree.nodes_[static_cast<std::size_t>(index)].left = left_child;
    const int right_child = build_node(tree, right_rows, depth + 1);
    tree.nodes_[static_cast<std::size_t>(index)].right = right_child;
    return index;
  }

  const Dataset& data_;
  const TreeParams& params_;
};

DecisionTree DecisionTree::fit(const Dataset& data, const TreeParams& params) {
  return TreeBuilder(data, params).build();
}

int DecisionTree::predict(const double* features) const {
  if (nodes_.empty()) return 0;
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].label;
}

int DecisionTree::predict_path(const double* features, std::vector<int>& path) const {
  if (nodes_.empty()) return 0;
  int node = 0;
  path.push_back(node);
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right;
    path.push_back(node);
  }
  return nodes_[static_cast<std::size_t>(node)].label;
}

int DecisionTree::predict(const std::vector<double>& features) const {
  if (features.size() != feature_names_.size()) {
    throw std::invalid_argument("DecisionTree::predict: feature count mismatch");
  }
  return predict(features.data());
}

std::vector<int> DecisionTree::predict_all(const Dataset& data) const {
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (std::size_t r = 0; r < data.num_rows(); ++r) out.push_back(predict(data.row(r).data()));
  return out;
}

double DecisionTree::score(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    if (predict(data.row(r).data()) == data.label(r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.num_rows());
}

int DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth over the flat array.
  std::vector<std::pair<int, int>> stack{{0, 0}};
  int deepest = 0;
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    deepest = std::max(deepest, d);
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    if (n.feature >= 0) {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return deepest;
}

std::vector<double> DecisionTree::feature_importances() const {
  std::vector<double> importances(feature_names_.size(), 0.0);
  if (nodes_.empty()) return importances;
  const double root_samples = static_cast<double>(nodes_[0].samples);
  for (const Node& n : nodes_) {
    if (n.feature < 0) continue;
    const Node& l = nodes_[static_cast<std::size_t>(n.left)];
    const Node& r = nodes_[static_cast<std::size_t>(n.right)];
    const double weighted_child =
        (static_cast<double>(l.samples) * l.impurity + static_cast<double>(r.samples) * r.impurity) /
        static_cast<double>(n.samples);
    const double decrease =
        (static_cast<double>(n.samples) / root_samples) * (n.impurity - weighted_child);
    importances[static_cast<std::size_t>(n.feature)] += std::max(decrease, 0.0);
  }
  const double total = std::accumulate(importances.begin(), importances.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

DecisionTree DecisionTree::prune_to_depth(int depth) const {
  DecisionTree out;
  out.feature_names_ = feature_names_;
  out.label_names_ = label_names_;
  if (nodes_.empty()) return out;

  const std::function<int(int, int)> copy_node = [&](int src, int d) -> int {
    const Node& n = nodes_[static_cast<std::size_t>(src)];
    const int index = static_cast<int>(out.nodes_.size());
    out.nodes_.push_back(n);
    if (n.feature < 0 || d >= depth) {
      // Collapse into a leaf keeping the majority label.
      out.nodes_[static_cast<std::size_t>(index)].feature = -1;
      out.nodes_[static_cast<std::size_t>(index)].left = -1;
      out.nodes_[static_cast<std::size_t>(index)].right = -1;
      return index;
    }
    const int left_child = copy_node(n.left, d + 1);
    out.nodes_[static_cast<std::size_t>(index)].left = left_child;
    const int right_child = copy_node(n.right, d + 1);
    out.nodes_[static_cast<std::size_t>(index)].right = right_child;
    return index;
  };
  copy_node(0, 0);
  return out;
}

std::string DecisionTree::to_text() const {
  std::ostringstream out;
  if (nodes_.empty()) {
    out << "(empty tree)\n";
    return out.str();
  }
  const std::function<void(int, int)> render = [&](int node, int indent) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    if (n.feature < 0) {
      out << pad << "-> " << label_names_[static_cast<std::size_t>(n.label)] << "  [samples="
          << n.samples << "]\n";
      return;
    }
    out << pad << "if (" << feature_names_[static_cast<std::size_t>(n.feature)] << " <= "
        << n.threshold << ")\n";
    render(n.left, indent + 1);
    out << pad << "else\n";
    render(n.right, indent + 1);
  };
  render(0, 0);
  return out.str();
}

void DecisionTree::save(std::ostream& out) const {
  out << "apollo-tree 1\n";
  out << "features " << feature_names_.size();
  for (const auto& name : feature_names_) out << ' ' << name;
  out << "\nlabels " << label_names_.size();
  for (const auto& name : label_names_) out << ' ' << name;
  out << "\nnodes " << nodes_.size() << '\n';
  out.precision(17);
  for (const Node& n : nodes_) {
    out << n.feature << ' ' << n.threshold << ' ' << n.left << ' ' << n.right << ' ' << n.label
        << ' ' << n.samples << ' ' << n.impurity << '\n';
  }
}

namespace {

/// Parse a section header count, rejecting non-numeric, negative, and absurd
/// values (an unsigned extraction would silently wrap "-1" into 2^64-1 and a
/// later resize would attempt to allocate it).
std::size_t read_count(std::istream& in, const char* expected, std::string& keyword) {
  constexpr long long kMaxCount = 1ll << 24;
  long long count = 0;
  in >> keyword >> count;
  if (!in || keyword != expected) {
    throw std::runtime_error(std::string("DecisionTree::load: expected '") + expected +
                             "' section, got '" + keyword + "'");
  }
  if (count < 0 || count > kMaxCount) {
    throw std::runtime_error(std::string("DecisionTree::load: invalid ") + expected +
                             " count " + std::to_string(count));
  }
  return static_cast<std::size_t>(count);
}

}  // namespace

DecisionTree DecisionTree::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "apollo-tree" || version != 1) {
    throw std::runtime_error("DecisionTree::load: bad header");
  }
  DecisionTree tree;
  std::string keyword;

  tree.feature_names_.resize(read_count(in, "features", keyword));
  for (auto& name : tree.feature_names_) in >> name;
  if (!in) throw std::runtime_error("DecisionTree::load: truncated feature names");

  tree.label_names_.resize(read_count(in, "labels", keyword));
  for (auto& name : tree.label_names_) in >> name;
  if (!in) throw std::runtime_error("DecisionTree::load: truncated label names");

  const std::size_t node_count = read_count(in, "nodes", keyword);
  if (node_count == 0) throw std::runtime_error("DecisionTree::load: empty tree");
  tree.nodes_.resize(node_count);
  for (auto& n : tree.nodes_) {
    in >> n.feature >> n.threshold >> n.left >> n.right >> n.label >> n.samples >> n.impurity;
  }
  if (!in) throw std::runtime_error("DecisionTree::load: truncated node table");

  // Structural validation: a malformed file must fail here with a clear
  // message, not later as an out-of-bounds predict. The builder appends
  // children after their parent, so child indices must point forward; that
  // also rules out cycles.
  const auto node_error = [](std::size_t index, const char* what) {
    throw std::runtime_error("DecisionTree::load: node " + std::to_string(index) + ": " + what);
  };
  for (std::size_t i = 0; i < node_count; ++i) {
    const Node& n = tree.nodes_[i];
    if (n.feature < 0) {
      if (n.label < 0 || static_cast<std::size_t>(n.label) >= tree.label_names_.size()) {
        node_error(i, "leaf label out of range");
      }
      continue;
    }
    if (static_cast<std::size_t>(n.feature) >= tree.feature_names_.size()) {
      node_error(i, "split feature out of range");
    }
    if (n.left < 0 || n.right < 0 || static_cast<std::size_t>(n.left) >= node_count ||
        static_cast<std::size_t>(n.right) >= node_count) {
      node_error(i, "child index out of range");
    }
    if (static_cast<std::size_t>(n.left) <= i || static_cast<std::size_t>(n.right) <= i) {
      node_error(i, "child index does not point forward (cycle)");
    }
  }
  return tree;
}

void DecisionTree::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("DecisionTree::save_file: cannot open " + path);
  save(out);
}

DecisionTree DecisionTree::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("DecisionTree::load_file: cannot open " + path);
  return load(in);
}

}  // namespace apollo::ml
