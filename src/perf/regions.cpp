#include "perf/regions.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace apollo::perf {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RegionProfiler& RegionProfiler::instance() {
  static RegionProfiler profiler;
  return profiler;
}

void RegionProfiler::begin(const std::string& name) {
  Node* parent = stack_.empty() ? &root_ : stack_.back().node;
  Node* child = nullptr;
  for (auto& existing : parent->children) {
    if (existing.name == name) {
      child = &existing;
      break;
    }
  }
  if (child == nullptr) {
    // Only the innermost open region's child vector ever grows, so the
    // Node pointers held by the open stack (its ancestors) stay valid.
    parent->children.push_back(Node{name, 0.0, 0, {}});
    child = &parent->children.back();
  }
  child->visits += 1;
  Open open{child, now_seconds()};
  if (telemetry::enabled()) {
    open.trace_name = telemetry::Tracer::instance().intern(name);
    open.start_ns = telemetry::now_ns();
  }
  stack_.push_back(open);
}

void RegionProfiler::end() {
  if (stack_.empty()) throw std::logic_error("RegionProfiler::end without begin");
  Open open = stack_.back();
  stack_.pop_back();
  open.node->inclusive_seconds += now_seconds() - open.started;
  if (open.trace_name != nullptr && telemetry::enabled()) {
    telemetry::emit_span(telemetry::EventKind::Phase, open.trace_name, open.start_ns,
                         telemetry::now_ns());
  }
}

std::string RegionProfiler::report() const {
  std::ostringstream out;
  const auto render = [&](const Node& node, int depth, auto&& self) -> void {
    if (depth >= 0) {
      out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << node.name << "  "
          << node.inclusive_seconds * 1e3 << " ms  (" << node.visits << " visits)\n";
    }
    for (const auto& child : node.children) self(child, depth + 1, self);
  };
  render(root_, -1, render);
  return out.str();
}

void RegionProfiler::reset() {
  root_.children.clear();
  root_.inclusive_seconds = 0.0;
  root_.visits = 0;
  stack_.clear();
}

}  // namespace apollo::perf
