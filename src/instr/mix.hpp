#pragma once

// Instruction-mix features (the paper's Dyninst-derived features, Table I).
//
// The paper disassembles each kernel lambda in the application binary and
// counts occurrences of grouped x86 mnemonics; those counts become model
// features (`func_size` is the total). Here each kernel registers a static
// InstructionMix describing its body — the same information, available at the
// same point (before any prediction is made). See DESIGN.md substitution 2.

#include <array>
#include <cstdint>
#include <string>

namespace apollo::instr {

/// Grouped mnemonics from Table I (e.g. `add` covers add/addpd/addsd), plus
/// `movsd` which the paper calls out separately in the feature-importance
/// analysis (Fig. 8) as the scalar-load indicator.
enum class Mnemonic : std::uint8_t {
  add, and_, call, cmp, comisd, divsd, inc, jb, lea, loop, maxsd, minsd,
  mov, movsd, mulpd, nop, pop, push, pxor, ret, sar, shl, sqrtsd, sub,
  test, ucomisd, unpckhpd, unpcklpd, xor_, xorps,
  count_  // sentinel
};

inline constexpr std::size_t kMnemonicCount = static_cast<std::size_t>(Mnemonic::count_);

/// Feature-name spelling for each mnemonic group ("and"/"xor" lose the
/// trailing underscore used to dodge C++ keywords).
[[nodiscard]] const char* mnemonic_name(Mnemonic m) noexcept;

/// Mnemonic counts for one kernel body.
class InstructionMix {
public:
  InstructionMix() { counts_.fill(0); }

  [[nodiscard]] std::int64_t count(Mnemonic m) const noexcept {
    return counts_[static_cast<std::size_t>(m)];
  }
  void set(Mnemonic m, std::int64_t n) noexcept { counts_[static_cast<std::size_t>(m)] = n; }
  void add(Mnemonic m, std::int64_t n) noexcept { counts_[static_cast<std::size_t>(m)] += n; }

  /// Total instruction count == the paper's `func_size` feature.
  [[nodiscard]] std::int64_t total() const noexcept;

  /// Floating-point arithmetic instructions (the compute weight).
  [[nodiscard]] std::int64_t flops() const noexcept;

  /// Memory-movement instructions (mov + movsd + stack ops): the bandwidth
  /// weight used by the machine model.
  [[nodiscard]] std::int64_t memory_ops() const noexcept;

  /// Expensive scalar math (divsd + sqrtsd), which dominates per-iteration
  /// latency when present.
  [[nodiscard]] std::int64_t expensive_ops() const noexcept;

private:
  std::array<std::int64_t, kMnemonicCount> counts_{};
};

/// Fluent builder so application kernels can declare their bodies tersely:
///   MixBuilder{}.fp(6).div(1).load(4).store(2).control(3).build()
class MixBuilder {
public:
  /// n mixed fp add/mul instructions (split between add and mulpd groups).
  MixBuilder& fp(std::int64_t n);
  MixBuilder& div(std::int64_t n);
  MixBuilder& sqrt(std::int64_t n);
  MixBuilder& minmax(std::int64_t n);
  MixBuilder& load(std::int64_t n);   // movsd (scalar loads)
  MixBuilder& store(std::int64_t n);  // mov
  MixBuilder& compare(std::int64_t n);
  MixBuilder& control(std::int64_t n);  // cmp/jb/call/ret bookkeeping
  MixBuilder& logic(std::int64_t n);    // and/xor/shifts

  [[nodiscard]] InstructionMix build() const { return mix_; }

private:
  InstructionMix mix_;
};

}  // namespace apollo::instr
