// Concurrent-dispatch microbenchmark: N application threads x M kernels
// through the full apollo::forall hooks, in all four runtime modes. This is
// the scaling proof for the KernelContext decomposition — with per-kernel
// stats shards and the RCU model snapshot, tuned-dispatch throughput must
// scale with the thread count instead of serializing on a runtime-wide lock
// (CI gates on >= 3x items/s at 8 threads vs 1 for the tuned path).
//
// Google Benchmark's threaded mode supplies the barrier semantics: every
// thread runs the same loop, thread 0 performs setup/teardown outside the
// timed region, and items/s is summed across threads via SetItemsProcessed.

#include <benchmark/benchmark.h>

#include "core/runtime.hpp"
#include "core/trainer.hpp"

namespace {

constexpr int kKernels = 8;
constexpr std::int64_t kN = 512;

const apollo::KernelHandle& kernel_at(int k) {
  static const apollo::KernelHandle kernels[kKernels] = {
      {"conc:k0", "Conc0", apollo::instr::MixBuilder{}.fp(2).load(2).store(1).build(), 24},
      {"conc:k1", "Conc1", apollo::instr::MixBuilder{}.fp(4).load(1).store(1).build(), 16},
      {"conc:k2", "Conc2", apollo::instr::MixBuilder{}.fp(1).load(3).store(2).build(), 40},
      {"conc:k3", "Conc3", apollo::instr::MixBuilder{}.fp(8).div(1).load(2).store(1).build(), 24},
      {"conc:k4", "Conc4", apollo::instr::MixBuilder{}.fp(3).load(2).store(2).build(), 32},
      {"conc:k5", "Conc5", apollo::instr::MixBuilder{}.fp(6).load(4).store(1).build(), 48},
      {"conc:k6", "Conc6", apollo::instr::MixBuilder{}.fp(2).div(1).load(1).store(1).build(), 16},
      {"conc:k7", "Conc7", apollo::instr::MixBuilder{}.fp(5).load(3).store(3).build(), 56},
  };
  return kernels[k];
}

const apollo::TunerModel& concurrent_model() {
  static const apollo::TunerModel model = [] {
    auto& rt = apollo::Runtime::instance();
    rt.reset();
    rt.set_execute_selected(false);
    rt.set_mode(apollo::Mode::Record);
    apollo::TrainingConfig training;
    training.chunk_values.clear();
    rt.set_training_config(training);
    for (int step = 0; step < 8; ++step) {
      for (int k = 0; k < kKernels; ++k) {
        apollo::forall(kernel_at(k), raja::IndexSet::range(0, kN), [](raja::Index) {});
      }
    }
    auto trained = apollo::Trainer::train(rt.records(), apollo::TunedParameter::Policy);
    rt.reset();
    return trained;
  }();
  return model;
}

/// The measured loop: each thread drives a disjoint slice of the kernel set
/// (different kernels never share a shard), cycling through its slice.
void dispatch_loop(benchmark::State& state) {
  const int threads = state.threads();
  const int per_thread = kKernels / threads > 0 ? kKernels / threads : 1;
  const int base = (state.thread_index() * per_thread) % kKernels;
  const raja::IndexSet iset = raja::IndexSet::range(0, kN);
  int slot = 0;
  for (auto _ : state) {
    apollo::forall(kernel_at(base + (slot++ % per_thread)), iset, [](raja::Index) {});
  }
  state.SetItemsProcessed(state.iterations());
}

void ConcurrentDispatchOff(benchmark::State& state) {
  if (state.thread_index() == 0) {
    auto& rt = apollo::Runtime::instance();
    rt.reset();
    rt.set_execute_selected(false);
  }
  dispatch_loop(state);
  if (state.thread_index() == 0) apollo::Runtime::instance().reset();
}
BENCHMARK(ConcurrentDispatchOff)->ThreadRange(1, 8)->UseRealTime();

void ConcurrentDispatchRecord(benchmark::State& state) {
  if (state.thread_index() == 0) {
    auto& rt = apollo::Runtime::instance();
    rt.reset();
    rt.set_execute_selected(false);
    rt.set_mode(apollo::Mode::Record);
    apollo::TrainingConfig training;
    training.sweep_variants = false;
    rt.set_training_config(training);
  }
  dispatch_loop(state);
  if (state.thread_index() == 0) apollo::Runtime::instance().reset();
}
BENCHMARK(ConcurrentDispatchRecord)->ThreadRange(1, 8)->UseRealTime();

void ConcurrentDispatchTune(benchmark::State& state) {
  if (state.thread_index() == 0) {
    const auto& model = concurrent_model();
    auto& rt = apollo::Runtime::instance();
    rt.reset();
    rt.set_execute_selected(false);
    rt.set_mode(apollo::Mode::Tune);
    rt.set_policy_model(model);
  }
  dispatch_loop(state);
  if (state.thread_index() == 0) apollo::Runtime::instance().reset();
}
BENCHMARK(ConcurrentDispatchTune)->ThreadRange(1, 8)->UseRealTime();

void ConcurrentDispatchTunePointer(benchmark::State& state) {
  // Pre-refactor tuned dispatch: pointer-walk evaluation on every launch,
  // inline cache off. The CI overhead gate compares the tuned path above
  // against this baseline at 1 and 8 threads.
  if (state.thread_index() == 0) {
    const auto& model = concurrent_model();
    auto& rt = apollo::Runtime::instance();
    rt.reset();
    rt.set_execute_selected(false);
    rt.set_mode(apollo::Mode::Tune);
    rt.set_policy_model(model);
    rt.set_inline_cache_enabled(false);
    rt.set_flat_eval_enabled(false);
  }
  dispatch_loop(state);
  if (state.thread_index() == 0) apollo::Runtime::instance().reset();
}
BENCHMARK(ConcurrentDispatchTunePointer)->ThreadRange(1, 8)->UseRealTime();

void ConcurrentDispatchAdapt(benchmark::State& state) {
  if (state.thread_index() == 0) {
    const auto& model = concurrent_model();
    auto& rt = apollo::Runtime::instance();
    rt.reset();
    rt.set_execute_selected(false);
    rt.set_mode(apollo::Mode::Adapt);
    rt.sample_buffer().set_capacity(4096);
    apollo::online::OnlineConfig config;
    config.retrain_every = 4096;
    config.min_retrain_samples = 64;
    rt.configure_online(config);
    rt.set_policy_model(model);
  }
  dispatch_loop(state);
  if (state.thread_index() == 0) apollo::Runtime::instance().reset();
}
BENCHMARK(ConcurrentDispatchAdapt)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
