file(REMOVE_RECURSE
  "CMakeFiles/fig10_tree_depth.dir/fig10_tree_depth.cpp.o"
  "CMakeFiles/fig10_tree_depth.dir/fig10_tree_depth.cpp.o.d"
  "fig10_tree_depth"
  "fig10_tree_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tree_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
