#include "ml/random_forest.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <random>
#include <stdexcept>

namespace apollo::ml {

RandomForest RandomForest::fit(const Dataset& data, const ForestParams& params) {
  if (params.num_trees < 1) throw std::invalid_argument("RandomForest: num_trees must be >= 1");
  RandomForest forest;
  forest.num_classes_ = data.num_classes();
  forest.num_features_ = data.num_features();
  if (data.num_rows() == 0) return forest;

  std::mt19937_64 rng(params.seed);
  const auto feature_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::min(1.0, params.feature_fraction) * static_cast<double>(data.num_features())));
  const auto row_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(params.row_fraction * static_cast<double>(data.num_rows())));

  std::vector<std::size_t> all_features(data.num_features());
  std::iota(all_features.begin(), all_features.end(), std::size_t{0});

  for (int t = 0; t < params.num_trees; ++t) {
    // Feature subset (sorted so select_features keeps a stable order).
    std::vector<std::size_t> chosen = all_features;
    std::shuffle(chosen.begin(), chosen.end(), rng);
    chosen.resize(feature_count);
    std::sort(chosen.begin(), chosen.end());
    std::vector<std::string> names;
    names.reserve(chosen.size());
    for (std::size_t f : chosen) names.push_back(data.feature_names()[f]);

    // Bootstrap rows (with replacement).
    std::uniform_int_distribution<std::size_t> row_dist(0, data.num_rows() - 1);
    std::vector<std::size_t> rows(row_count);
    for (auto& r : rows) r = row_dist(rng);

    const Dataset sample = data.subset(rows).select_features(names);
    forest.trees_.push_back(DecisionTree::fit(sample, params.tree));
    forest.feature_maps_.push_back(std::move(chosen));
  }
  return forest;
}

int RandomForest::predict(const double* features) const {
  if (trees_.empty()) return 0;
  std::vector<int> votes(std::max<std::size_t>(num_classes_, 1), 0);
  std::vector<double> local;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const auto& map = feature_maps_[t];
    local.resize(map.size());
    for (std::size_t f = 0; f < map.size(); ++f) local[f] = features[map[f]];
    const int label = trees_[t].predict(local.data());
    if (static_cast<std::size_t>(label) < votes.size()) votes[static_cast<std::size_t>(label)]++;
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

int RandomForest::predict(const std::vector<double>& features) const {
  if (features.size() != num_features_) {
    throw std::invalid_argument("RandomForest::predict: feature count mismatch");
  }
  return predict(features.data());
}

double RandomForest::score(const Dataset& data) const {
  if (data.num_rows() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < data.num_rows(); ++r) {
    if (predict(data.row(r).data()) == data.label(r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.num_rows());
}

std::vector<double> RandomForest::feature_importances() const {
  std::vector<double> importances(num_features_, 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const auto local = trees_[t].feature_importances();
    for (std::size_t f = 0; f < local.size(); ++f) {
      importances[feature_maps_[t][f]] += local[f];
    }
  }
  const double total = std::accumulate(importances.begin(), importances.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

void RandomForest::save(std::ostream& out) const {
  out << "apollo-forest 1\n";
  out << num_classes_ << ' ' << num_features_ << ' ' << trees_.size() << '\n';
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    out << "map " << feature_maps_[t].size();
    for (std::size_t f : feature_maps_[t]) out << ' ' << f;
    out << '\n';
    trees_[t].save(out);
  }
}

RandomForest RandomForest::load(std::istream& in) {
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "apollo-forest" || version != 1) {
    throw std::runtime_error("RandomForest::load: bad header");
  }
  RandomForest forest;
  std::size_t trees = 0;
  in >> forest.num_classes_ >> forest.num_features_ >> trees;
  for (std::size_t t = 0; t < trees; ++t) {
    std::string keyword;
    std::size_t count = 0;
    in >> keyword >> count;
    if (keyword != "map") throw std::runtime_error("RandomForest::load: expected map");
    std::vector<std::size_t> map(count);
    for (auto& f : map) in >> f;
    forest.feature_maps_.push_back(std::move(map));
    forest.trees_.push_back(DecisionTree::load(in));
  }
  if (!in) throw std::runtime_error("RandomForest::load: truncated");
  return forest;
}

}  // namespace apollo::ml
