// End-to-end Mode::Adapt test on the deterministic machine-model timing
// source: a model trained on small launches mis-predicts after the workload
// shifts to large sizes; the adaptation loop must notice (drift fire),
// retrain in the background, hot-swap, and start predicting the parallel
// policy — all inside one process, without touching the offline pipeline.

#include <gtest/gtest.h>

#include "core/runtime.hpp"
#include "core/trainer.hpp"

using namespace apollo;

namespace {

const KernelHandle& stream_kernel() {
  static const KernelHandle k{"test:adapt", "AdaptStream",
                              instr::MixBuilder{}.fp(2).load(2).store(1).build(), 24};
  return k;
}

void launch(std::int64_t size) {
  auto& rt = Runtime::instance();
  const raja::IndexSet iset = raja::IndexSet::range(0, size);
  const ModelParams params = rt.begin(stream_kernel(), iset);
  rt.end(stream_kernel(), iset, params);
}

/// Policy-only model fitted to small launches (seq is right for all of them).
TunerModel small_regime_model() {
  auto& rt = Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Record);
  TrainingConfig config;
  config.chunk_values.clear();
  rt.set_training_config(config);
  for (std::int64_t size : {500, 1000, 2000, 4000}) {
    for (int i = 0; i < 4; ++i) launch(size);
  }
  return Trainer::train(rt.records(), TunedParameter::Policy);
}

class AdaptModeTest : public ::testing::Test {
protected:
  void TearDown() override { Runtime::instance().reset(); }
};

}  // namespace

TEST_F(AdaptModeTest, RecoversFromWorkloadShiftViaHotSwap) {
  const TunerModel stale = small_regime_model();

  auto& rt = Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);

  online::OnlineConfig config;
  config.sample_stride = 2;
  config.min_retrain_samples = 24;
  config.post_drift_samples = 12;
  config.drift.window = 24;
  config.drift.min_samples = 6;
  config.drift.cooldown = 32;
  config.explorer.epsilon = 0.10;
  config.explorer.boosted_epsilon = 0.40;
  rt.configure_online(config);
  rt.set_policy_model(stale);

  // Small regime: the stale model is right, nothing should fire.
  for (int i = 0; i < 60; ++i) launch(2000);
  EXPECT_EQ(rt.online().status().drift_fires, 0u);

  // Shift to sizes far past the seq/omp crossover. The stale model keeps
  // predicting seq; drift must fire and a retrain must land.
  for (int i = 0; i < 400 && rt.online().status().model_version == 0; ++i) {
    launch(200000);
  }
  rt.online().wait_retrain_idle();

  const auto status = rt.online().status();
  EXPECT_GE(status.drift_fires, 1u);
  EXPECT_GE(status.retrains_completed, 1u);
  EXPECT_EQ(status.retrains_failed, 0u);
  ASSERT_GE(status.model_version, 1u);

  // After one more launch begin() notices the published version and
  // hot-swaps; large launches must now be predicted parallel.
  launch(200000);
  const raja::IndexSet big = raja::IndexSet::range(0, 200000);
  const ModelParams params = rt.begin(stream_kernel(), big);
  rt.end(stream_kernel(), big, params);
  EXPECT_EQ(params.policy, raja::PolicyType::seq_segit_omp_parallel_for_exec);
}

TEST_F(AdaptModeTest, StridedSamplingAndExploredLaunchesFillBuffer) {
  auto& rt = Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);

  online::OnlineConfig config;
  config.sample_stride = 4;
  config.retrain_every = 0;  // no retraining; watch the sampling only
  config.explorer.epsilon = 0.0;
  rt.configure_online(config);

  for (int i = 0; i < 40; ++i) launch(1000);
  // Every 4th predicted launch is recorded; no exploration is running.
  EXPECT_EQ(rt.record_count(), 10u);
  EXPECT_EQ(rt.online().status().explorations, 0u);
}

TEST_F(AdaptModeTest, ConfigureOnlineResetsState) {
  auto& rt = Runtime::instance();
  rt.reset();
  rt.set_execute_selected(false);
  rt.set_mode(Mode::Adapt);

  online::OnlineConfig config;
  config.explorer.epsilon = 0.5;
  rt.configure_online(config);
  for (int i = 0; i < 50; ++i) launch(1000);
  EXPECT_GT(rt.online().status().explorations, 0u);

  config.explorer.epsilon = 0.0;
  rt.configure_online(config);
  EXPECT_EQ(rt.online().status().explorations, 0u);
  EXPECT_EQ(rt.online().status().launches, 0u);
}
