file(REMOVE_RECURSE
  "CMakeFiles/fig11_speedups.dir/fig11_speedups.cpp.o"
  "CMakeFiles/fig11_speedups.dir/fig11_speedups.cpp.o.d"
  "fig11_speedups"
  "fig11_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
