// Tests for per-kernel model sets.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/model_set.hpp"

using namespace apollo;

namespace {

perf::SampleRecord record_for(const std::string& loop_id, std::int64_t n,
                              const std::string& policy, double runtime) {
  perf::SampleRecord r;
  r["loop_id"] = loop_id;
  r["num_indices"] = n;
  r["param:policy"] = policy;
  r["measure:runtime"] = runtime;
  return r;
}

/// Two kernels with OPPOSITE optimal policies at the same size — a global
/// model must use loop_id; per-kernel models separate them trivially.
std::vector<perf::SampleRecord> conflicting_records() {
  std::vector<perf::SampleRecord> records;
  for (int rep = 0; rep < 6; ++rep) {
    const auto n = static_cast<std::int64_t>(1000 + rep);
    records.push_back(record_for("k:alpha", n, "seq", 1e-6));
    records.push_back(record_for("k:alpha", n, "omp", 1e-5));
    records.push_back(record_for("k:beta", n, "seq", 1e-5));
    records.push_back(record_for("k:beta", n, "omp", 1e-6));
  }
  return records;
}

ml::TreeParams loose() {
  ml::TreeParams p;
  p.min_samples_leaf = 1;
  p.min_samples_split = 2;
  return p;
}

TunerModel::Resolver resolver(const std::string& loop_id, std::int64_t n) {
  return [loop_id, n](const std::string& name) -> std::optional<perf::Value> {
    if (name == "loop_id") return perf::Value(loop_id);
    if (name == "num_indices") return perf::Value(n);
    return std::nullopt;
  };
}

}  // namespace

TEST(ModelSet, TrainsOneModelPerKernel) {
  const ModelSet set = ModelSet::train_per_kernel(conflicting_records(),
                                                  TunedParameter::Policy, loose());
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.has_kernel("k:alpha"));
  EXPECT_TRUE(set.has_kernel("k:beta"));
}

TEST(ModelSet, PerKernelModelsSeparateConflictingKernels) {
  const ModelSet set = ModelSet::train_per_kernel(conflicting_records(),
                                                  TunedParameter::Policy, loose());
  const int alpha = set.predict("k:alpha", resolver("k:alpha", 1003));
  const int beta = set.predict("k:beta", resolver("k:beta", 1003));
  EXPECT_EQ(set.label_name("k:alpha", alpha), "seq");
  EXPECT_EQ(set.label_name("k:beta", beta), "omp");
}

TEST(ModelSet, UnknownKernelFallsBackToGlobalModel) {
  const ModelSet set = ModelSet::train_per_kernel(conflicting_records(),
                                                  TunedParameter::Policy, loose());
  EXPECT_FALSE(set.has_kernel("k:gamma"));
  // The fallback exists and yields a valid label.
  const int label = set.predict("k:gamma", resolver("k:gamma", 1000));
  const std::string& name = set.label_name("k:gamma", label);
  EXPECT_TRUE(name == "seq" || name == "omp");
}

TEST(ModelSet, GlobalFallbackLearnsLoopIdFeature) {
  // The fallback model sees loop_id as a feature, so even it can separate
  // the conflicting kernels.
  const ModelSet set = ModelSet::train_per_kernel(conflicting_records(),
                                                  TunedParameter::Policy, loose());
  const auto& fallback = set.fallback();
  const int alpha = fallback.predict(resolver("k:alpha", 1003));
  const int beta = fallback.predict(resolver("k:beta", 1003));
  EXPECT_NE(fallback.label_name(alpha), fallback.label_name(beta));
}

TEST(ModelSet, TotalNodesCountsEverything) {
  const ModelSet set = ModelSet::train_per_kernel(conflicting_records(),
                                                  TunedParameter::Policy, loose());
  EXPECT_GE(set.total_nodes(), 3u);  // fallback has at least one split
}

TEST(ModelSet, SaveLoadRoundTrip) {
  const ModelSet set = ModelSet::train_per_kernel(conflicting_records(),
                                                  TunedParameter::Policy, loose());
  const std::string path =
      (std::filesystem::temp_directory_path() / "apollo_model_set_test.models").string();
  set.save_file(path);
  const ModelSet back = ModelSet::load_file(path);
  std::filesystem::remove(path);
  EXPECT_EQ(back.size(), set.size());
  EXPECT_EQ(back.label_name("k:alpha", back.predict("k:alpha", resolver("k:alpha", 1002))),
            set.label_name("k:alpha", set.predict("k:alpha", resolver("k:alpha", 1002))));
}

TEST(ModelSet, NoLoopIdRecordsThrow) {
  std::vector<perf::SampleRecord> records;
  perf::SampleRecord r;
  r["num_indices"] = 5;
  r["param:policy"] = "seq";
  r["measure:runtime"] = 1.0;
  records.push_back(r);
  EXPECT_THROW((void)ModelSet::train_per_kernel(records, TunedParameter::Policy),
               std::invalid_argument);
}
