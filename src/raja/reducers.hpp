#pragma once

// RAJA-style reduction objects: usable from forall bodies under any
// execution policy. Like RAJA's ReduceMin/ReduceMax/ReduceSum, a reducer is
// copyable (copies share state) so lambdas can capture it by value; get()
// reads the combined result after forall returns.
//
// Internally a reducer holds an array of cache-line-padded partial slots,
// one per pool member (threads pick a stable slot from a process-wide id),
// and get() combines the partials. Updates touch only the calling thread's
// own cache line — the shared-single-atomic design this replaces turned
// reduction-heavy kernels (LULESH's dt constraints) into a CAS storm, every
// member hammering one cache line. Slot updates still use atomic combines,
// so the result stays exact even if more threads than slots ever fold into
// the same partial. LULESH's Courant/hydro timestep constraints use these.

#include <atomic>
#include <cstddef>
#include <memory>

namespace raja {

namespace detail {

/// Padded partial-slot count: a power of two comfortably above any pool the
/// runtime spawns, so in practice every member owns a private slot.
inline constexpr std::size_t kReducerSlots = 64;

/// Stable per-thread slot index, assigned round-robin from a process-wide
/// counter on the thread's first reduction.
inline std::size_t reducer_slot_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kReducerSlots - 1);
  return slot;
}

template <typename T>
struct alignas(64) PaddedSlot {
  std::atomic<T> value;
};

/// Atomically combine `value` into `slot` with `better(candidate, current)`.
template <typename T, typename Better>
void atomic_combine(std::atomic<T>& slot, T value, Better better) {
  T current = slot.load(std::memory_order_relaxed);
  while (better(value, current) &&
         !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

/// Shared state for the min/max reducers: every slot starts at the initial
/// value, so get() is simply the best across slots.
template <typename T>
struct SelectState {
  explicit SelectState(T initial) {
    for (auto& slot : slots) slot.value.store(initial, std::memory_order_relaxed);
  }
  PaddedSlot<T> slots[kReducerSlots];
};

}  // namespace detail

template <typename T>
class ReduceMin {
public:
  explicit ReduceMin(T initial) : state_(std::make_shared<detail::SelectState<T>>(initial)) {}

  void min(T value) const {
    detail::atomic_combine(state_->slots[detail::reducer_slot_index()].value, value,
                           [](T a, T b) { return a < b; });
  }
  [[nodiscard]] T get() const {
    T best = state_->slots[0].value.load(std::memory_order_relaxed);
    for (std::size_t s = 1; s < detail::kReducerSlots; ++s) {
      const T v = state_->slots[s].value.load(std::memory_order_relaxed);
      if (v < best) best = v;
    }
    return best;
  }

private:
  std::shared_ptr<detail::SelectState<T>> state_;
};

template <typename T>
class ReduceMax {
public:
  explicit ReduceMax(T initial) : state_(std::make_shared<detail::SelectState<T>>(initial)) {}

  void max(T value) const {
    detail::atomic_combine(state_->slots[detail::reducer_slot_index()].value, value,
                           [](T a, T b) { return a > b; });
  }
  [[nodiscard]] T get() const {
    T best = state_->slots[0].value.load(std::memory_order_relaxed);
    for (std::size_t s = 1; s < detail::kReducerSlots; ++s) {
      const T v = state_->slots[s].value.load(std::memory_order_relaxed);
      if (v > best) best = v;
    }
    return best;
  }

private:
  std::shared_ptr<detail::SelectState<T>> state_;
};

template <typename T>
class ReduceSum {
public:
  explicit ReduceSum(T initial = T{}) : state_(std::make_shared<State>(initial)) {}

  void add(T value) const {
    // C++20 atomic fetch_add covers both integral and floating T; relaxed is
    // enough — get() is only specified after the region completes, and the
    // fork-join join supplies the synchronization.
    state_->slots[detail::reducer_slot_index()].value.fetch_add(value,
                                                               std::memory_order_relaxed);
  }
  [[nodiscard]] T get() const {
    T total = state_->initial;
    for (const auto& slot : state_->slots) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

private:
  struct State {
    explicit State(T init) : initial(init) {
      for (auto& slot : slots) slot.value.store(T{}, std::memory_order_relaxed);
    }
    T initial;
    detail::PaddedSlot<T> slots[detail::kReducerSlots];
  };
  std::shared_ptr<State> state_;
};

}  // namespace raja
