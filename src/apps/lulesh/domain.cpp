#include "apps/lulesh/domain.hpp"

#include <cmath>

namespace apollo::apps::lulesh {

namespace {

double tet_volume(double ax, double ay, double az, double bx, double by, double bz, double cx,
                  double cy, double cz, double dx, double dy, double dz) noexcept {
  const double ux = ax - dx, uy = ay - dy, uz = az - dz;
  const double vx = bx - dx, vy = by - dy, vz = bz - dz;
  const double wx = cx - dx, wy = cy - dy, wz = cz - dz;
  return (ux * (vy * wz - vz * wy) - uy * (vx * wz - vz * wx) + uz * (vx * wy - vy * wx)) / 6.0;
}

}  // namespace

double hex_volume(const double* hx, const double* hy, const double* hz) noexcept {
  // Six tets sharing the 0-6 diagonal; valid for convex hexes.
  static constexpr int tets[6][4] = {{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
                                     {0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6}};
  double volume = 0.0;
  for (const auto& t : tets) {
    volume += tet_volume(hx[t[0]], hy[t[0]], hz[t[0]], hx[t[1]], hy[t[1]], hz[t[1]], hx[t[2]],
                         hy[t[2]], hz[t[2]], hx[t[3]], hy[t[3]], hz[t[3]]);
  }
  return std::fabs(volume);
}

void hex_corner_normals(const double* hx, const double* hy, const double* hz, double* nx,
                        double* ny, double* nz) noexcept {
  // Faces listed with corners ordered so 0.5*((c-a) x (d-b)) points outward.
  static constexpr int faces[6][4] = {{0, 3, 2, 1}, {4, 5, 6, 7}, {0, 1, 5, 4},
                                      {3, 7, 6, 2}, {0, 4, 7, 3}, {1, 2, 6, 5}};
  for (const auto& f : faces) {
    const int a = f[0], b = f[1], c = f[2], d = f[3];
    const double d1x = hx[c] - hx[a], d1y = hy[c] - hy[a], d1z = hz[c] - hz[a];
    const double d2x = hx[d] - hx[b], d2y = hy[d] - hy[b], d2z = hz[d] - hz[b];
    // Quarter of the face area vector goes to each corner.
    const double ax = 0.125 * (d1y * d2z - d1z * d2y);
    const double ay = 0.125 * (d1z * d2x - d1x * d2z);
    const double az = 0.125 * (d1x * d2y - d1y * d2x);
    for (int corner : f) {
      nx[corner] += ax;
      ny[corner] += ay;
      nz[corner] += az;
    }
  }
}

void Domain::build(int edge_elems, double initial_energy) {
  s = edge_elems;
  numElem = s * s * s;
  numNode = (s + 1) * (s + 1) * (s + 1);

  const auto nsize = static_cast<std::size_t>(numNode);
  const auto esize = static_cast<std::size_t>(numElem);
  for (auto* field : {&x, &y, &z, &xd, &yd, &zd, &xdd, &ydd, &zdd, &fx, &fy, &fz, &nodalMass}) {
    field->assign(nsize, 0.0);
  }
  for (auto* field : {&e, &p, &q, &delv, &vdov, &ss, &sigxx, &sigyy, &sigzz, &e_old, &p_old,
                      &q_old, &compression, &work, &p_new, &e_new, &q_new}) {
    field->assign(esize, 0.0);
  }
  for (auto* field : {&v, &vnew}) field->assign(esize, 1.0);
  for (auto* field : {&fx_elem, &fy_elem, &fz_elem}) field->assign(esize * 8, 0.0);
  volo.assign(esize, 0.0);
  elemMass.assign(esize, 0.0);
  arealg.assign(esize, 0.0);
  dtcourant_el.assign(esize, 1e20);
  dthydro_el.assign(esize, 1e20);

  // Unit cube domain, uniform initial spacing.
  const double h = 1.125 / static_cast<double>(s);
  for (int k = 0; k <= s; ++k) {
    for (int j = 0; j <= s; ++j) {
      for (int i = 0; i <= s; ++i) {
        const int n = nodeIndex(i, j, k);
        x[static_cast<std::size_t>(n)] = h * i;
        y[static_cast<std::size_t>(n)] = h * j;
        z[static_cast<std::size_t>(n)] = h * k;
      }
    }
  }

  const double cell_volume = h * h * h;
  for (int el = 0; el < numElem; ++el) {
    volo[static_cast<std::size_t>(el)] = cell_volume;
    elemMass[static_cast<std::size_t>(el)] = cell_volume;  // unit density
    arealg[static_cast<std::size_t>(el)] = h;
  }
  // Nodal mass: 1/8 of each adjacent element.
  for (int k = 0; k < s; ++k) {
    for (int j = 0; j < s; ++j) {
      for (int i = 0; i < s; ++i) {
        const double share = elemMass[static_cast<std::size_t>(elemIndex(i, j, k))] / 8.0;
        for (int dk = 0; dk <= 1; ++dk) {
          for (int dj = 0; dj <= 1; ++dj) {
            for (int di = 0; di <= 1; ++di) {
              nodalMass[static_cast<std::size_t>(nodeIndex(i + di, j + dj, k + dk))] += share;
            }
          }
        }
      }
    }
  }

  // Sedov: deposit energy in the origin corner element.
  e[0] = initial_energy / cell_volume;

  // Material regions: skewed sizes (region r gets a contiguous band of
  // elements, bands shrink geometrically like LULESH's biased region sizes).
  regions.clear();
  regions.resize(static_cast<std::size_t>(numReg));
  regionMass.assign(static_cast<std::size_t>(numReg), 0.0);
  regionSize.assign(static_cast<std::size_t>(numReg), 0.0);
  {
    // Weights 2^0..2^-(numReg-1), normalized.
    std::vector<double> weights(static_cast<std::size_t>(numReg));
    double total = 0.0;
    for (int r = 0; r < numReg; ++r) {
      weights[static_cast<std::size_t>(r)] = std::pow(0.62, r);
      total += weights[static_cast<std::size_t>(r)];
    }
    int next = 0;
    for (int r = 0; r < numReg; ++r) {
      int count = static_cast<int>(weights[static_cast<std::size_t>(r)] / total * numElem);
      if (r == numReg - 1) count = numElem - next;  // absorb rounding
      count = std::max(count, 1);
      std::vector<raja::Index> elems;
      elems.reserve(static_cast<std::size_t>(count));
      for (int c = 0; c < count && next < numElem; ++c) elems.push_back(next++);
      raja::IndexSet iset;
      iset.push_back(raja::ListSegment{std::move(elems)});
      regions[static_cast<std::size_t>(r)] = std::move(iset);
      regionSize[static_cast<std::size_t>(r)] =
          static_cast<double>(regions[static_cast<std::size_t>(r)].getLength());
    }
  }

  // Symmetry-plane node lists.
  auto plane = [&](auto pick) {
    std::vector<raja::Index> nodes;
    for (int b = 0; b <= s; ++b) {
      for (int a = 0; a <= s; ++a) nodes.push_back(pick(a, b));
    }
    raja::IndexSet iset;
    iset.push_back(raja::ListSegment{std::move(nodes)});
    return iset;
  };
  symmX = plane([&](int a, int b) { return nodeIndex(0, a, b); });
  symmY = plane([&](int a, int b) { return nodeIndex(a, 0, b); });
  symmZ = plane([&](int a, int b) { return nodeIndex(a, b, 0); });

  time = 0.0;
  deltatime = 1e-7 * 45.0 / static_cast<double>(s);  // scale-aware initial dt
  cycle = 0;
}

}  // namespace apollo::apps::lulesh
