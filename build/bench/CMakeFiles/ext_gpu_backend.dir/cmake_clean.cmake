file(REMOVE_RECURSE
  "CMakeFiles/ext_gpu_backend.dir/ext_gpu_backend.cpp.o"
  "CMakeFiles/ext_gpu_backend.dir/ext_gpu_backend.cpp.o.d"
  "ext_gpu_backend"
  "ext_gpu_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gpu_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
