#include "online/model_registry.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "telemetry/telemetry.hpp"

namespace apollo::online {

namespace fs = std::filesystem;

namespace {

std::string version_file_name(std::uint64_t version, const char* parameter) {
  char name[64];
  std::snprintf(name, sizeof(name), "v%06llu.%s.model",
                static_cast<unsigned long long>(version), parameter);
  return name;
}

std::optional<TunerModel> load_if_present(const fs::path& path) {
  if (!fs::exists(path)) return std::nullopt;
  return TunerModel::load_file(path.string());
}

}  // namespace

void ModelRegistry::set_persist_dir(std::string dir) {
  std::lock_guard lock(mutex_);
  dir_ = std::move(dir);
  if (!dir_.empty()) fs::create_directories(dir_);
}

std::string ModelRegistry::persist_dir() const {
  std::lock_guard lock(mutex_);
  return dir_;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::current() const {
  std::lock_guard lock(mutex_);
  return current_;
}

std::uint64_t ModelRegistry::publish(std::optional<TunerModel> policy,
                                     std::optional<TunerModel> chunk,
                                     std::optional<TunerModel> threads) {
  std::lock_guard lock(mutex_);
  auto next = std::make_shared<ModelSnapshot>();
  next->version = (current_ ? current_->version : 0) + 1;
  next->policy = policy ? std::move(policy) : (current_ ? current_->policy : std::nullopt);
  next->chunk = chunk ? std::move(chunk) : (current_ ? current_->chunk : std::nullopt);
  next->threads = threads ? std::move(threads) : (current_ ? current_->threads : std::nullopt);
  if (!dir_.empty()) persist_locked(*next);
  current_ = std::move(next);
  version_.store(current_->version, std::memory_order_release);
  if (telemetry::enabled()) {
    telemetry::MetricsRegistry::instance()
        .gauge("apollo_model_registry_version", "Latest model generation published.")
        .set(static_cast<double>(current_->version));
  }
  return current_->version;
}

void ModelRegistry::persist_locked(const ModelSnapshot& snapshot) const {
  const fs::path dir(dir_);
  if (snapshot.policy) {
    snapshot.policy->save_file((dir / version_file_name(snapshot.version, "policy")).string());
  }
  if (snapshot.chunk) {
    snapshot.chunk->save_file((dir / version_file_name(snapshot.version, "chunk")).string());
  }
  if (snapshot.threads) {
    snapshot.threads->save_file((dir / version_file_name(snapshot.version, "threads")).string());
  }
  // The LATEST pointer is written to a temp file and renamed so a crash
  // mid-write leaves the previous generation installed, never a torn file.
  const fs::path marker = dir / "LATEST";
  const fs::path tmp = dir / "LATEST.tmp";
  {
    std::ofstream out(tmp);
    if (!out) throw std::runtime_error("ModelRegistry: cannot write " + tmp.string());
    out << snapshot.version << '\n';
  }
  fs::rename(tmp, marker);
}

std::uint64_t ModelRegistry::load_latest() {
  std::lock_guard lock(mutex_);
  if (dir_.empty()) return 0;
  const fs::path marker = fs::path(dir_) / "LATEST";
  std::ifstream in(marker);
  if (!in) return 0;
  std::uint64_t version = 0;
  in >> version;
  if (version == 0) return 0;

  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->version = version;
  const fs::path dir(dir_);
  snapshot->policy = load_if_present(dir / version_file_name(version, "policy"));
  snapshot->chunk = load_if_present(dir / version_file_name(version, "chunk"));
  snapshot->threads = load_if_present(dir / version_file_name(version, "threads"));
  if (snapshot->empty()) return 0;
  current_ = std::move(snapshot);
  version_.store(version, std::memory_order_release);
  return version;
}

}  // namespace apollo::online
