#pragma once

// Process-wide tuning-search configuration (the APOLLO_SEARCH knob family).
//
// Selects how training runs cover the variant space:
//
//   exhaustive  — measure every variant per launch (the paper's protocol;
//                 the default, bit-for-bit the pre-search behaviour);
//   twostage    — model-seeded + evolutionary search (src/ml/search/):
//                 measure a budgeted fraction, skip the rest.
//
// Parsed once through the hardened telemetry::env_* layer (garbage values
// warn on stderr and keep the documented default) and applied at all three
// training entry points: the Record-mode sweep in Runtime::end, the online
// Retrainer's per-duty-cycle augmentation, and tools/apollo_train.

#include <cstddef>
#include <cstdint>

namespace apollo {

enum class SearchMode : std::uint8_t { Exhaustive, TwoStage };

[[nodiscard]] const char* search_mode_name(SearchMode mode) noexcept;

struct SearchOptions {
  SearchMode mode = SearchMode::Exhaustive;
  /// Distinct configurations measured per launch group (APOLLO_SEARCH_BUDGET;
  /// 0 = budget_fraction x space size, the 10%-of-space measurement target).
  std::size_t budget = 0;
  double budget_fraction = 0.10;
  /// Stage-1 model-ranked seed population (APOLLO_SEARCH_SEED_K).
  std::size_t seed_k = 8;
  /// Stage-2 evolutionary generations (APOLLO_SEARCH_GENERATIONS).
  std::size_t generations = 4;
};

/// Read APOLLO_SEARCH / APOLLO_SEARCH_BUDGET / APOLLO_SEARCH_SEED_K /
/// APOLLO_SEARCH_GENERATIONS. Every knob warns-and-defaults on garbage.
[[nodiscard]] SearchOptions search_options_from_env();

}  // namespace apollo
