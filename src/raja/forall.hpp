#pragma once

// The forall execution method. A kernel body is a callable taking one Index;
// the policy argument (tag type or value) selects the backend. Each distinct
// (policy, body-type) pair instantiates its own template, so the compiler can
// inline and optimize every kernel independently — the property §II-D shows
// is worth ~30% over a shared generic execution function.
//
// The parallel backends hand the pool a *block trampoline*: one monomorphic
// `void(const void*, Index, Index)` instantiated per (segment-kind, body)
// pair. Workers make a single indirect call per static-schedule block and the
// per-index loop compiles — and inlines — inside the trampoline, so the
// fork-join substrate never pays a std::function call per iteration.

#include <type_traits>
#include <utility>

#include "parallel/thread_pool.hpp"
#include "raja/index_set.hpp"
#include "raja/policy.hpp"

namespace raja {

namespace detail {

// The pool's trampoline ABI passes the body as const void*; the const_cast
// restores the caller's original qualification (Body deduces const for const
// callables), so mutable lambdas keep working exactly as they did when the
// wrapper captured them by reference.

template <typename Body>
void range_block(const void* body, std::int64_t lo, std::int64_t hi) {
  Body& b = *const_cast<Body*>(static_cast<const Body*>(body));
  for (Index i = lo; i < hi; ++i) b(i);
}

template <typename Body>
struct StridedBody {
  Body* body;
  Index begin;
  Index stride;
};

template <typename Body>
void strided_block(const void* ctx, std::int64_t lo, std::int64_t hi) {
  const auto& s = *static_cast<const StridedBody<Body>*>(ctx);
  for (Index k = lo; k < hi; ++k) (*s.body)(s.begin + k * s.stride);
}

template <typename Body>
struct ListBody {
  Body* body;
  const Index* indices;
};

template <typename Body>
void list_block(const void* ctx, std::int64_t lo, std::int64_t hi) {
  const auto& l = *static_cast<const ListBody<Body>*>(ctx);
  for (Index k = lo; k < hi; ++k) (*l.body)(l.indices[k]);
}

template <typename Body>
struct SegitBody {
  const IndexSet* iset;
  Body* body;
};

template <typename Body>
void segit_block(const void* ctx, std::int64_t lo, std::int64_t hi) {
  const auto& s = *static_cast<const SegitBody<Body>*>(ctx);
  for (Index seg = lo; seg < hi; ++seg) {
    std::visit([&](const auto& segment) { segment.for_each(*s.body); },
               s.iset->segment(static_cast<std::size_t>(seg)));
  }
}

}  // namespace detail

/// Sequential backend.
template <typename Body>
void forall(seq_exec, const IndexSet& iset, Body&& body) {
  iset.for_each_index(std::forward<Body>(body));
}

/// OpenMP-static backend on the owned thread pool: segments run in order,
/// indices within a segment are dealt to team members in chunk-size blocks
/// (the caller participates as member 0).
template <typename Body>
void forall(omp_parallel_for_exec policy, const IndexSet& iset, Body&& body) {
  using B = std::remove_reference_t<Body>;
  auto& pool = ::apollo::par::ThreadPool::global();
  for (std::size_t s = 0; s < iset.getNumSegments(); ++s) {
    std::visit(
        [&](const auto& seg) {
          using Seg = std::decay_t<decltype(seg)>;
          if constexpr (std::is_same_v<Seg, RangeSegment>) {
            pool.parallel_for_blocks(seg.begin, seg.end, policy.chunk, &detail::range_block<B>,
                                     &body, policy.threads);
          } else if constexpr (std::is_same_v<Seg, StridedSegment>) {
            const detail::StridedBody<B> ctx{&body, seg.begin, seg.stride};
            pool.parallel_for_blocks(0, seg.size(), policy.chunk, &detail::strided_block<B>,
                                     &ctx, policy.threads);
          } else {
            const detail::ListBody<B> ctx{&body, seg.indices.data()};
            pool.parallel_for_blocks(0, seg.size(), policy.chunk, &detail::list_block<B>, &ctx,
                                     policy.threads);
          }
        },
        iset.segment(s));
  }
}

/// Segment-parallel backend: segments are dealt to team members round-robin,
/// and each segment's indices run sequentially on its owning member.
template <typename Body>
void forall(omp_segit_seq_exec, const IndexSet& iset, Body&& body) {
  using B = std::remove_reference_t<Body>;
  auto& pool = ::apollo::par::ThreadPool::global();
  const detail::SegitBody<B> ctx{&iset, &body};
  pool.parallel_for_blocks(0, static_cast<Index>(iset.getNumSegments()), 1,
                           &detail::segit_block<B>, &ctx);
}

/// RAJA-style spelling: forall<exec_policy>(iset, body).
template <typename ExecPolicy, typename Body>
void forall(const IndexSet& iset, Body&& body) {
  forall(ExecPolicy{}, iset, std::forward<Body>(body));
}

/// Convenience for plain [begin, end) ranges.
template <typename ExecPolicy, typename Body>
void forall(Index begin, Index end, Body&& body) {
  RangeSegment seg{begin, end};
  if constexpr (std::is_same_v<ExecPolicy, seq_exec>) {
    seg.for_each(std::forward<Body>(body));
  } else {
    IndexSet iset;
    iset.push_back(seg);
    forall(ExecPolicy{}, iset, std::forward<Body>(body));
  }
}

/// Execute with a runtime-chosen policy value.
template <typename Body>
void forall(PolicyType policy, Index chunk, const IndexSet& iset, Body&& body) {
  if (policy == PolicyType::seq_segit_seq_exec) {
    forall(seq_exec{}, iset, std::forward<Body>(body));
  } else {
    forall(omp_parallel_for_exec{chunk, 0}, iset, std::forward<Body>(body));
  }
}

}  // namespace raja
