# Empty dependencies file for end_to_end_workflow.
# This may be replaced when dependencies are built.
