file(REMOVE_RECURSE
  "CMakeFiles/ext_thread_tuning.dir/ext_thread_tuning.cpp.o"
  "CMakeFiles/ext_thread_tuning.dir/ext_thread_tuning.cpp.o.d"
  "ext_thread_tuning"
  "ext_thread_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_thread_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
