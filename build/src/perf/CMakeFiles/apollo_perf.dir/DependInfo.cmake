
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/blackboard.cpp" "src/perf/CMakeFiles/apollo_perf.dir/blackboard.cpp.o" "gcc" "src/perf/CMakeFiles/apollo_perf.dir/blackboard.cpp.o.d"
  "/root/repo/src/perf/csv_export.cpp" "src/perf/CMakeFiles/apollo_perf.dir/csv_export.cpp.o" "gcc" "src/perf/CMakeFiles/apollo_perf.dir/csv_export.cpp.o.d"
  "/root/repo/src/perf/record.cpp" "src/perf/CMakeFiles/apollo_perf.dir/record.cpp.o" "gcc" "src/perf/CMakeFiles/apollo_perf.dir/record.cpp.o.d"
  "/root/repo/src/perf/regions.cpp" "src/perf/CMakeFiles/apollo_perf.dir/regions.cpp.o" "gcc" "src/perf/CMakeFiles/apollo_perf.dir/regions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
