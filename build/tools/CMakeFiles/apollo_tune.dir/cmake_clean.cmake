file(REMOVE_RECURSE
  "CMakeFiles/apollo_tune.dir/apollo_tune.cpp.o"
  "CMakeFiles/apollo_tune.dir/apollo_tune.cpp.o.d"
  "apollo_tune"
  "apollo_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
