// apollo-replay: offline what-if replay of a decision audit log.
//
// Reads the rotating audit segments a run wrote with APOLLO_AUDIT_FILE set
// (decision records carry the exact feature vector the live policy model
// saw; probe records carry ground-truth timings of non-executed variants)
// and re-evaluates one or more candidate `.model` files against them:
//
//   - determinism: with --expect-match GEN, the FIRST --model is claimed to
//     be the one that was live as generation GEN; its replayed prediction
//     must equal the recorded label bit-for-bit on every record that
//     generation wrote — a failure means the model file and the live model
//     diverged. Other models report their match rate informationally;
//   - accuracy: predictions are scored against the best-known policy per
//     (kernel, feature-bucket), estimated from every observed runtime in the
//     log (decisions, explorations, and probes), via ml::ConfusionMatrix;
//   - regret: the estimated seconds/launch lost by each model's choices
//     versus that best-known policy.
//
// This is the CI model-regression gate: replay the same log through the
// previous and the candidate model and compare, with --min-accuracy as the
// hard floor. Candidate models must come from the same training pipeline as
// the recording model so categorical feature encodings line up.
//
// With --oracle FILE, records from FILE feed the ground-truth pass only:
// they strengthen the per-(kernel, bucket) policy baselines but are never
// replayed or scored themselves. This is how the two-stage search gate works
// — replay a budgeted-search run's decisions against an exhaustive-sweep
// audit log as the oracle, and --min-accuracy asserts the label quality the
// cheaper search must preserve (see docs/search.md).
//
// Usage:
//   apollo_replay LOG.jsonl... --model FILE [--model FILE]...
//                 [--oracle FILE]... [--expect-match GEN] [--min-accuracy X]
//                 [--confusion]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/tuner_model.hpp"
#include "ml/confusion.hpp"
#include "ml/flat_tree.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/hwprof.hpp"
#include "telemetry/build_info.hpp"

namespace {

using apollo::telemetry::AuditRecord;

/// Ground truth for one (kernel, bucket): mean observed seconds per policy.
struct BucketTruth {
  std::map<std::string, std::pair<double, std::uint64_t>> policy_seconds;  // sum, count

  void add(const std::string& policy, double seconds) {
    auto& [sum, count] = policy_seconds[policy];
    sum += seconds;
    count += 1;
  }
  [[nodiscard]] double mean(const std::string& policy) const {
    const auto it = policy_seconds.find(policy);
    if (it == policy_seconds.end() || it->second.second == 0) return -1.0;
    return it->second.first / static_cast<double>(it->second.second);
  }
  /// The best-known policy, only meaningful with evidence for >= 2 policies.
  [[nodiscard]] std::string best() const {
    std::string best_policy;
    double best_mean = -1.0;
    for (const auto& [policy, acc] : policy_seconds) {
      const double m = acc.first / static_cast<double>(acc.second);
      if (best_mean < 0.0 || m < best_mean) {
        best_mean = m;
        best_policy = policy;
      }
    }
    return best_policy;
  }
  [[nodiscard]] bool scorable() const { return policy_seconds.size() >= 2; }
};

struct ModelReport {
  std::string path;
  std::uint64_t replayed = 0;        ///< decision records evaluated
  std::uint64_t gen_records = 0;     ///< records matching --expect-match's generation
  std::uint64_t gen_matches = 0;     ///< ... whose replayed label equals the recorded one
  std::uint64_t scored = 0;          ///< records with ground truth (>= 2 policies seen)
  std::uint64_t correct = 0;
  std::uint64_t flat_checked = 0;    ///< records replayed through the compiled flat table
  std::uint64_t flat_mismatches = 0; ///< ... where flat and pointer walk disagreed
  double regret_seconds = 0.0;       ///< estimated seconds lost vs best-known policy
  apollo::ml::ConfusionMatrix confusion{0};
  std::vector<std::string> labels;

  [[nodiscard]] double accuracy() const {
    return scored > 0 ? static_cast<double>(correct) / static_cast<double>(scored) : 0.0;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: apollo_replay LOG.jsonl... --model FILE [--model FILE]...\n"
               "                     [--oracle FILE]... [--expect-match GEN]\n"
               "                     [--min-accuracy X] [--confusion] [--version]\n"
               "\n"
               "--oracle FILE adds FILE's records to the ground-truth baselines without\n"
               "replaying them (e.g. an exhaustive-sweep audit log scoring a budgeted\n"
               "two-stage search run).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> log_paths;
  std::vector<std::string> model_paths;
  std::vector<std::string> oracle_paths;
  long long expect_gen = -1;
  double min_accuracy = -1.0;
  bool show_confusion = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* { return a + 1 < argc ? argv[++a] : nullptr; };
    if (arg == "--version") {
      std::printf("%s\n", apollo::build_info_string().c_str());
      return 0;
    } else if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return usage();
      model_paths.emplace_back(v);
    } else if (arg == "--oracle") {
      const char* v = next();
      if (v == nullptr) return usage();
      oracle_paths.emplace_back(v);
    } else if (arg == "--expect-match") {
      const char* v = next();
      if (v == nullptr) return usage();
      expect_gen = std::atoll(v);
    } else if (arg == "--min-accuracy") {
      const char* v = next();
      if (v == nullptr) return usage();
      min_accuracy = std::atof(v);
    } else if (arg == "--confusion") {
      show_confusion = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      log_paths.push_back(arg);
    }
  }
  if (log_paths.empty() || model_paths.empty()) return usage();

  // Load every complete line from every segment (a live writer's partial
  // trailing line is skipped, not misparsed), oldest segment first.
  std::vector<AuditRecord> records;
  std::vector<AuditRecord> oracle_records;
  std::uint64_t malformed = 0;
  const auto load = [&malformed](const std::vector<std::string>& paths,
                                 std::vector<AuditRecord>& out) {
    for (const auto& path : paths) {
      const auto lines = apollo::telemetry::read_complete_lines(path);
      if (!lines) {
        std::fprintf(stderr, "apollo_replay: cannot read %s\n", path.c_str());
        return false;
      }
      for (const auto& line : *lines) {
        if (auto record = apollo::telemetry::parse_audit_line(line)) {
          out.push_back(std::move(*record));
        } else {
          ++malformed;
        }
      }
    }
    return true;
  };
  if (!load(log_paths, records) || !load(oracle_paths, oracle_records)) return 2;
  if (records.empty()) {
    std::fprintf(stderr, "apollo_replay: no audit records in %zu file(s)\n", log_paths.size());
    return 2;
  }

  // Pass 1 — ground truth: every observed runtime in the log (model-chosen
  // launches, explorations, and probes) feeds the per-(kernel, bucket)
  // policy baselines the replayed predictions are scored against.
  std::map<std::pair<std::string, std::uint64_t>, BucketTruth> truth;
  std::uint64_t decisions = 0;
  std::uint64_t probes = 0;
  for (const auto& record : records) {
    truth[{record.kernel, record.bucket}].add(record.policy, record.seconds);
    if (record.kind == AuditRecord::Kind::Decision) {
      ++decisions;
    } else {
      ++probes;
    }
  }
  // Oracle records feed the baselines only — they are never replayed, so a
  // budgeted run is scored against evidence it never had to measure itself.
  for (const auto& record : oracle_records) {
    truth[{record.kernel, record.bucket}].add(record.policy, record.seconds);
  }

  // Pass 2 — replay each candidate model over the decision records.
  std::vector<ModelReport> reports;
  for (const auto& model_path : model_paths) {
    apollo::TunerModel model;
    try {
      model = apollo::TunerModel::load_file(model_path);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "apollo_replay: %s: %s\n", model_path.c_str(), error.what());
      return 2;
    }

    ModelReport report;
    report.path = model_path;
    // Confusion-matrix label space: the model's own labels plus any policy
    // the log proves best that the model cannot even name.
    report.labels.assign(model.tree().label_names().begin(), model.tree().label_names().end());
    for (const auto& [key, bucket_truth] : truth) {
      (void)key;
      if (!bucket_truth.scorable()) continue;
      const std::string best = bucket_truth.best();
      if (std::find(report.labels.begin(), report.labels.end(), best) == report.labels.end()) {
        report.labels.push_back(best);
      }
    }
    report.confusion = apollo::ml::ConfusionMatrix(report.labels.size());
    const auto label_index = [&](const std::string& name) {
      const auto it = std::find(report.labels.begin(), report.labels.end(), name);
      return static_cast<int>(it - report.labels.begin());
    };

    const auto& feature_names = model.tree().feature_names();
    std::vector<double> feature_buffer(feature_names.size());
    // Replay doubles as a parity audit of the compiled flat table: every
    // record's features flow through both evaluators, so a hot-swapped model
    // that replays clean also proves flat == pointer walk on real inputs.
    const auto flat = apollo::ml::FlatTree::compile(model.tree());
    for (const auto& record : records) {
      if (record.kind != AuditRecord::Kind::Decision) continue;
      // Rebuild the feature vector in this model's feature order from the
      // recorded (name, value) pairs; features this model wants but the
      // recording model never resolved evaluate as missing (-1).
      for (std::size_t f = 0; f < feature_names.size(); ++f) {
        double value = -1.0;
        for (const auto& [name, recorded] : record.features) {
          if (name == feature_names[f]) {
            value = recorded;
            break;
          }
        }
        feature_buffer[f] = value;
      }
      const int predicted = model.tree().predict(feature_buffer.data());
      const std::string& predicted_label = model.label_name(predicted);
      ++report.replayed;
      if (flat.ok()) {
        ++report.flat_checked;
        if (flat.predict(feature_buffer.data()) != predicted) ++report.flat_mismatches;
      }

      if (expect_gen >= 0 && record.model_version == static_cast<std::uint64_t>(expect_gen) &&
          !record.label.empty()) {
        ++report.gen_records;
        if (predicted_label == record.label) ++report.gen_matches;
      }

      const auto truth_it = truth.find({record.kernel, record.bucket});
      if (truth_it == truth.end() || !truth_it->second.scorable()) continue;
      const std::string best = truth_it->second.best();
      ++report.scored;
      if (predicted_label == best) ++report.correct;
      report.confusion.add(label_index(best), label_index(predicted_label));
      const double predicted_mean = truth_it->second.mean(predicted_label);
      const double best_mean = truth_it->second.mean(best);
      if (predicted_mean >= 0.0 && predicted_mean > best_mean) {
        report.regret_seconds += predicted_mean - best_mean;
      }
    }
    reports.push_back(std::move(report));
  }

  std::printf("apollo_replay — %s\n", apollo::build_info_string().c_str());
  std::printf("replayed %llu decision + %llu probe records from %zu file(s)",
              static_cast<unsigned long long>(decisions),
              static_cast<unsigned long long>(probes), log_paths.size());
  if (!oracle_records.empty()) {
    std::printf(" + %zu oracle records (truth only)", oracle_records.size());
  }
  if (malformed > 0) {
    std::printf(" (%llu malformed lines skipped)", static_cast<unsigned long long>(malformed));
  }
  std::printf("\n");

  // Counter signatures (hwprof annotations): what the PMU saw during the
  // launches the recorded model got right vs the ones it got wrong. A
  // diverging fingerprint — say, mispredictions clustering at low IPC and
  // high cache-miss rate — tells the modeler which hardware features the
  // next feature set should include.
  const auto hw = apollo::telemetry::hwprof::correlate_hw(records);
  if (hw.audited > 0) {
    std::printf("counter signatures (%llu annotated decisions)\n",
                static_cast<unsigned long long>(hw.audited));
    const auto row = [](const char* label, const apollo::telemetry::hwprof::HwSignature& s) {
      std::printf("  %-14s %8llu launches | ipc %5.2f | cmiss/ki %7.3f | bmiss/ki %7.3f | "
                  "stall %5.1f%%\n",
                  label, static_cast<unsigned long long>(s.launches), s.mean_ipc,
                  s.mean_cache_miss_rate * 1e3, s.mean_branch_miss_rate * 1e3,
                  s.mean_stall_fraction * 100.0);
    };
    row("predicted", hw.predicted);
    row("mispredicted", hw.mispredicted);
  }
  std::printf("\n");

  bool determinism_failed = false;
  const ModelReport* best_report = nullptr;
  for (const auto& report : reports) {
    std::printf("model %s\n", report.path.c_str());
    std::printf("  accuracy %5.1f%% (%llu/%llu scored of %llu), est. regret %.3f ms\n",
                report.accuracy() * 100.0, static_cast<unsigned long long>(report.correct),
                static_cast<unsigned long long>(report.scored),
                static_cast<unsigned long long>(report.replayed),
                report.regret_seconds * 1e3);
    if (report.flat_checked > 0) {
      std::printf("  flat-table parity: %llu/%llu records identical to the pointer walk\n",
                  static_cast<unsigned long long>(report.flat_checked - report.flat_mismatches),
                  static_cast<unsigned long long>(report.flat_checked));
    } else {
      std::printf("  flat-table parity: n/a (model not compilable to the packed layout)\n");
    }
    if (expect_gen >= 0) {
      std::printf("  gen %lld replay match: %llu/%llu recorded labels reproduced\n", expect_gen,
                  static_cast<unsigned long long>(report.gen_matches),
                  static_cast<unsigned long long>(report.gen_records));
      // Only the first model claims to BE that generation.
      if (&report == &reports.front() && report.gen_records > 0 &&
          report.gen_matches != report.gen_records) {
        determinism_failed = true;
      }
    }
    // --expect-match also asserts the compiled table: the claim "this model
    // reproduces the recorded decisions" must hold for the representation the
    // runtime actually evaluates, not just the pointer tree.
    if (expect_gen >= 0 && report.flat_mismatches > 0) determinism_failed = true;
    if (show_confusion && report.scored > 0) {
      std::printf("%s", report.confusion.to_text(report.labels).c_str());
    }
    if (best_report == nullptr || report.accuracy() > best_report->accuracy()) {
      best_report = &report;
    }
  }
  if (reports.size() > 1 && best_report != nullptr && best_report != &reports.front()) {
    const ModelReport& baseline = reports.front();
    std::printf("\nbest model: %s (accuracy %+0.1f%%, regret %+0.3f ms vs %s)\n",
                best_report->path.c_str(),
                (best_report->accuracy() - baseline.accuracy()) * 100.0,
                (best_report->regret_seconds - baseline.regret_seconds) * 1e3,
                baseline.path.c_str());
  }

  if (determinism_failed) {
    std::fprintf(stderr,
                 "apollo_replay: FAIL — replayed predictions diverge from the recorded "
                 "generation-%lld decisions\n",
                 expect_gen);
    return 1;
  }
  if (min_accuracy >= 0.0 && best_report != nullptr && best_report->accuracy() < min_accuracy) {
    std::fprintf(stderr, "apollo_replay: FAIL — best model accuracy %.3f below floor %.3f\n",
                 best_report->accuracy(), min_accuracy);
    return 1;
  }
  return 0;
}
