#pragma once

// Shared support for the experiment harnesses (one binary per paper
// table/figure). Each binary records its own training corpus, builds the
// models it needs, and prints the same rows/series the paper reports.

#include <cstdint>
#include <string>
#include <vector>

#include "apps/application.hpp"
#include "core/runtime.hpp"
#include "core/trainer.hpp"
#include "ml/dataset.hpp"
#include "perf/record.hpp"

namespace apollo::bench {

/// Record a sweep-mode training corpus over every (problem, size) of an app.
/// with_chunks=false records only the two policy variants per launch, which
/// keeps policy-only experiments lean.
[[nodiscard]] std::vector<perf::SampleRecord> record_training(apps::Application& app, int steps,
                                                              bool with_chunks);

/// Record one specific (problem, size) configuration.
[[nodiscard]] std::vector<perf::SampleRecord> record_problem(apps::Application& app,
                                                             const std::string& problem, int size,
                                                             int steps, bool with_chunks);

/// Deterministically subsample a dataset to at most max_rows rows.
[[nodiscard]] ml::Dataset subsample(const ml::Dataset& data, std::size_t max_rows,
                                    std::uint64_t seed);

/// Indices of the N features with the highest importance in a tree trained
/// on the full dataset, returned as names (most important first).
[[nodiscard]] std::vector<std::string> top_features(const ml::Dataset& data, std::size_t count,
                                                    const ml::TreeParams& params = {});

/// The loop_ids consuming the most total (oracle) time, most expensive first.
[[nodiscard]] std::vector<std::string> top_kernels_by_time(const LabeledData& data,
                                                           std::size_t count);

// --- formatting ------------------------------------------------------------

void print_heading(const std::string& title, const std::string& paper_reference);
void print_row(const std::vector<std::string>& cells, const std::vector<int>& widths);
[[nodiscard]] std::string fmt(double value, int precision = 2);
[[nodiscard]] std::string fmt_seconds(double seconds);

}  // namespace apollo::bench
