#pragma once

// k-fold cross-validation (the paper's Table II protocol: 10 folds, report
// the mean accuracy of the ten held-out scores).

#include <cstdint>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"

namespace apollo::ml {

struct CrossValidationResult {
  double mean_accuracy = 0.0;
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
  std::vector<double> fold_accuracies;
};

/// Shuffle rows with `seed`, split into `folds` groups, train on folds-1 and
/// score the held-out fold, rotating.
[[nodiscard]] CrossValidationResult cross_validate(const Dataset& data,
                                                   const TreeParams& params = {},
                                                   int folds = 10,
                                                   std::uint64_t seed = 0x9e3779b9u);

}  // namespace apollo::ml
