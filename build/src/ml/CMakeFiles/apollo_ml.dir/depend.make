# Empty dependencies file for apollo_ml.
# This may be replaced when dependencies are built.
