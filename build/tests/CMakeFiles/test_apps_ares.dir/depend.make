# Empty dependencies file for test_apps_ares.
# This may be replaced when dependencies are built.
